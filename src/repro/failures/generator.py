"""Platform failure streams for the event-driven simulator.

A *failure stream* is a time-ordered sequence of ``(time, processor)``
events.  The general simulation engine consumes streams through the
:class:`FailureStream` cursor, which supports lazy extension because the
total execution time of a run (with re-executions) is not known in advance.

Semantics note: streams are generated **as if every processor kept failing
at its own rate even while dead**; the engine simply ignores events that
strike an already-dead processor.  For exponential (memoryless) failures
this is *exactly* equivalent to the real dynamics where only live
processors fail, and it matches how log traces are replayed (a recorded
failure of a node that our simulated application already lost is a no-op).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import SimulationError
from repro.failures.distributions import InterArrivalDistribution
from repro.failures.traces import FailureTrace, platform_failure_stream
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive, check_positive_int

__all__ = [
    "FailureSource",
    "ExponentialFailureSource",
    "RenewalFailureSource",
    "TraceFailureSource",
    "FailureStream",
]


class FailureSource(ABC):
    """Factory of platform failure events over a requested horizon."""

    #: number of processors addressed by the events
    n_procs: int

    @abstractmethod
    def generate(self, t0: float, t1: float, rng: np.random.Generator):
        """Return ``(times, procs)`` for all events in ``[t0, t1)``.

        Successive calls with adjacent intervals must form one consistent
        sample path (implementations carry whatever state they need).
        """

    def _fresh(self) -> "FailureSource":
        """Return a source instance with pristine per-path state.

        Stateless sources may return ``self``; stateful ones (renewal,
        trace) must return an independent copy so that concurrently open
        cursors never share a sample path.
        """
        return self

    def open(self, seed: SeedLike = None, *, horizon_hint: float | None = None) -> "FailureStream":
        """Open a lazily-extended cursor over one independent sample path.

        *horizon_hint* pre-generates the path up to an expected run length,
        which trace-backed sources require (a rotated trace cannot be
        extended in place once materialised).
        """
        return FailureStream(self._fresh(), seed, horizon_hint=horizon_hint)


class ExponentialFailureSource(FailureSource):
    """IID exponential failures: platform-level Poisson process.

    The superposition of ``N`` per-processor Poisson processes of rate
    ``lambda`` is a Poisson process of rate ``N lambda`` whose events hit a
    uniformly random processor — which is how events are drawn here, in
    O(#events) regardless of N.
    """

    def __init__(self, mtbf: float, n_procs: int) -> None:
        self.mtbf = check_positive("mtbf", mtbf)
        self.n_procs = check_positive_int("n_procs", n_procs)

    def generate(self, t0: float, t1: float, rng: np.random.Generator):
        if t1 <= t0:
            return np.empty(0), np.empty(0, dtype=np.int64)
        rate = self.n_procs / self.mtbf
        expected = (t1 - t0) * rate
        n = rng.poisson(expected)
        times = np.sort(rng.uniform(t0, t1, n))
        procs = rng.integers(0, self.n_procs, n)
        return times, procs


class RenewalFailureSource(FailureSource):
    """Per-processor renewal processes with an arbitrary gap distribution.

    Exact per-node renewal sampling; cost scales with ``n_procs``, so this
    source targets small platforms (tests, one-pair studies) and
    non-exponential what-if experiments.  State (the next pending arrival of
    each node) persists across ``generate`` calls to keep the sample path
    consistent.
    """

    def __init__(self, distribution: InterArrivalDistribution, n_procs: int) -> None:
        self.distribution = distribution
        self.n_procs = check_positive_int("n_procs", n_procs)
        self._next_arrival: np.ndarray | None = None
        self._generated_until = 0.0

    def _fresh(self) -> "RenewalFailureSource":
        return RenewalFailureSource(self.distribution, self.n_procs)

    def generate(self, t0: float, t1: float, rng: np.random.Generator):
        if t1 <= t0:
            return np.empty(0), np.empty(0, dtype=np.int64)
        if self._next_arrival is None:
            self._next_arrival = self.distribution.sample(self.n_procs, rng)
        if t0 < self._generated_until:
            raise SimulationError(
                "RenewalFailureSource cannot rewind; open a fresh stream instead"
            )
        times_out: list[float] = []
        procs_out: list[int] = []
        nxt = self._next_arrival
        for p in range(self.n_procs):
            t = nxt[p]
            while t < t1:
                if t >= t0:
                    times_out.append(t)
                    procs_out.append(p)
                t += float(self.distribution.sample(1, rng)[0])
            nxt[p] = t
        self._generated_until = t1
        times = np.asarray(times_out)
        procs = np.asarray(procs_out, dtype=np.int64)
        order = np.argsort(times, kind="stable")
        return times[order], procs[order]


class TraceFailureSource(FailureSource):
    """Replay of a failure log using the paper's group methodology.

    The full platform stream is materialised once per opened cursor (trace
    rotation + group mapping are randomised per cursor seed, as the paper
    randomises rotations per simulation set); the trace is tiled cyclically
    if the requested horizon outlives the log.
    """

    def __init__(
        self,
        trace: FailureTrace,
        n_procs: int,
        n_groups: int,
        *,
        node_mapping: str = "random",
        n_pairs: int | None = None,
    ) -> None:
        self.trace = trace
        self.n_procs = check_positive_int("n_procs", n_procs)
        self.n_groups = check_positive_int("n_groups", n_groups)
        self.node_mapping = node_mapping
        self.n_pairs = n_pairs
        self._times: np.ndarray | None = None
        self._procs: np.ndarray | None = None
        self._horizon = 0.0

    def _fresh(self) -> "TraceFailureSource":
        return TraceFailureSource(
            self.trace, self.n_procs, self.n_groups,
            node_mapping=self.node_mapping, n_pairs=self.n_pairs,
        )

    def _materialise(self, horizon: float, rng: np.random.Generator) -> None:
        self._times, self._procs = platform_failure_stream(
            self.trace, self.n_procs, self.n_groups, horizon, seed=rng,
            node_mapping=self.node_mapping, n_pairs=self.n_pairs,
        )
        self._horizon = horizon

    def generate(self, t0: float, t1: float, rng: np.random.Generator):
        if t1 <= t0:
            return np.empty(0), np.empty(0, dtype=np.int64)
        if self._times is None:
            # Materialise with generous head-room: a rotated trace cannot be
            # extended in place, so over-provision (events are cheap).
            self._materialise(max(t1 * 16.0, 1.0), rng)
        if t1 > self._horizon:
            raise SimulationError(
                "trace stream exhausted: re-open the cursor with a larger "
                "initial horizon (trace rotation cannot be extended in place)"
            )
        lo = np.searchsorted(self._times, t0, side="left")
        hi = np.searchsorted(self._times, t1, side="left")
        return self._times[lo:hi], self._procs[lo:hi]


class FailureStream:
    """Lazily-extended cursor over one failure sample path.

    The engine repeatedly calls :meth:`failures_between`; the stream buffers
    generated events and extends the generated horizon geometrically, so
    the amortised cost is linear in the number of events regardless of how
    long the run turns out to be.
    """

    #: initial generation horizon (seconds) when no hint is given
    INITIAL_HORIZON = 1.0e4

    def __init__(self, source: FailureSource, seed: SeedLike = None, *, horizon_hint: float | None = None):
        self._source = source
        self._rng = as_generator(seed)
        self._times = np.empty(0)
        self._procs = np.empty(0, dtype=np.int64)
        self._generated_until = 0.0
        if horizon_hint is not None:
            self._extend_to(check_positive("horizon_hint", horizon_hint))

    @property
    def n_procs(self) -> int:
        return self._source.n_procs

    def _extend_to(self, t: float) -> None:
        if t <= self._generated_until:
            return
        target = max(
            t * 1.5,
            self._generated_until * 2.0,
            self.INITIAL_HORIZON,
        )
        new_times, new_procs = self._source.generate(self._generated_until, target, self._rng)
        self._times = np.concatenate([self._times, new_times])
        self._procs = np.concatenate([self._procs, new_procs])
        self._generated_until = target

    def failures_between(self, t0: float, t1: float) -> tuple[np.ndarray, np.ndarray]:
        """All events with ``t0 <= time < t1`` (sorted)."""
        if t1 < t0:
            raise SimulationError(f"invalid window [{t0}, {t1})")
        self._extend_to(t1)
        lo = np.searchsorted(self._times, t0, side="left")
        hi = np.searchsorted(self._times, t1, side="left")
        return self._times[lo:hi], self._procs[lo:hi]

    def next_failure_after(self, t: float) -> tuple[float, int] | None:
        """First event strictly after *t*, extending the path as needed."""
        probe = max(t, 1.0)
        for _ in range(64):
            self._extend_to(probe * 2.0)
            idx = np.searchsorted(self._times, t, side="right")
            if idx < self._times.size:
                return float(self._times[idx]), int(self._procs[idx])
            probe = self._generated_until
        raise SimulationError("no failure found after extensive horizon extension")
