"""Failure traces and the paper's trace-rescaling methodology.

Figure 4 of the paper replays LANL log traces instead of random exponential
failures.  Its scaling recipe (Section 7.2) is:

1. pick a target platform (200,000 processors, individual MTBF 5 years,
   hence global MTBF ``~788 s``);
2. partition the platform into ``g`` groups so that the group count times
   the trace failure rate matches the target global rate (64 groups for
   LANL#2 with MTBF 14.1 h, 32 groups for LANL#18 with MTBF 7.5 h);
3. rotate each group's copy of the trace around an independently chosen
   random date, so group streams start at independent offsets;
4. merge the group streams into one platform failure stream.

:class:`FailureTrace` is the immutable trace container;
:func:`platform_failure_stream` implements steps 2–4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TraceError
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive, check_positive_int

__all__ = ["FailureTrace", "platform_failure_stream", "groups_for_target"]


@dataclass(frozen=True, eq=False)
class FailureTrace:
    """An immutable failure log: event times and the node each one struck.

    Parameters
    ----------
    times:
        Failure instants in seconds, non-decreasing, within ``[0, duration)``.
    node_ids:
        Integer id of the struck node for each failure (``0 .. n_nodes-1``).
    n_nodes:
        Number of nodes covered by the log.
    duration:
        Observation window length in seconds (defaults to the last failure
        time plus the mean gap, a standard renewal-process estimate).
    name:
        Optional label (e.g. ``"LANL#2"``).
    """

    times: np.ndarray
    node_ids: np.ndarray
    n_nodes: int
    duration: float | None = None
    name: str = ""

    def __init__(
        self,
        times,
        node_ids,
        n_nodes: int,
        duration: float | None = None,
        name: str = "",
    ) -> None:
        times_arr = np.asarray(times, dtype=float)
        nodes_arr = np.asarray(node_ids, dtype=np.int64)
        if times_arr.ndim != 1 or nodes_arr.ndim != 1:
            raise TraceError("times and node_ids must be one-dimensional")
        if times_arr.shape != nodes_arr.shape:
            raise TraceError(
                f"times ({times_arr.shape}) and node_ids ({nodes_arr.shape}) differ in length"
            )
        if times_arr.size == 0:
            raise TraceError("a failure trace must contain at least one failure")
        if np.any(np.diff(times_arr) < 0):
            raise TraceError("failure times must be non-decreasing")
        if times_arr[0] < 0:
            raise TraceError("failure times must be non-negative")
        n_nodes = check_positive_int("n_nodes", n_nodes)
        if np.any(nodes_arr < 0) or np.any(nodes_arr >= n_nodes):
            raise TraceError(f"node ids must lie in [0, {n_nodes})")
        if duration is None:
            mean_gap = times_arr[-1] / max(times_arr.size - 1, 1)
            duration = float(times_arr[-1] + max(mean_gap, 1.0))
        duration = check_positive("duration", duration)
        if times_arr[-1] >= duration:
            raise TraceError(
                f"last failure ({times_arr[-1]}) must precede the trace duration ({duration})"
            )
        object.__setattr__(self, "times", times_arr)
        object.__setattr__(self, "node_ids", nodes_arr)
        object.__setattr__(self, "n_nodes", n_nodes)
        object.__setattr__(self, "duration", float(duration))
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------
    @property
    def n_failures(self) -> int:
        return int(self.times.size)

    @property
    def mtbf(self) -> float:
        """Whole-log mean time between failures: ``duration / n_failures``."""
        return self.duration / self.n_failures

    @property
    def node_mtbf(self) -> float:
        """Per-node MTBF assuming homogeneous nodes."""
        return self.mtbf * self.n_nodes

    def inter_arrival_times(self) -> np.ndarray:
        """Gaps between consecutive failures (whole-log stream)."""
        return np.diff(self.times)

    # ------------------------------------------------------------------
    def rotate(self, pivot: float) -> "FailureTrace":
        """Rotate the log around time *pivot* (paper step 3).

        Failures at ``t >= pivot`` are shifted to ``t - pivot``; failures at
        ``t < pivot`` wrap to ``t + duration - pivot``.  The rotated trace
        covers the same duration and preserves every inter-failure gap
        except the one cut at the pivot.
        """
        if not 0.0 <= pivot < self.duration:
            raise TraceError(f"pivot must lie in [0, {self.duration}), got {pivot}")
        shifted = self.times - pivot
        shifted[shifted < 0] += self.duration
        order = np.argsort(shifted, kind="stable")
        return FailureTrace(
            shifted[order],
            self.node_ids[order],
            self.n_nodes,
            duration=self.duration,
            name=self.name,
        )

    def tile(self, horizon: float) -> "FailureTrace":
        """Cyclically repeat the log to cover at least *horizon* seconds."""
        horizon = check_positive("horizon", horizon)
        if horizon <= self.duration:
            return self
        reps = int(np.ceil(horizon / self.duration))
        times = np.concatenate([self.times + k * self.duration for k in range(reps)])
        nodes = np.tile(self.node_ids, reps)
        return FailureTrace(
            times, nodes, self.n_nodes, duration=reps * self.duration, name=self.name
        )

    def restrict(self, horizon: float) -> "FailureTrace":
        """Keep only failures strictly before *horizon*."""
        horizon = check_positive("horizon", horizon)
        mask = self.times < horizon
        if not mask.any():
            raise TraceError("restriction removes every failure in the trace")
        return FailureTrace(
            self.times[mask],
            self.node_ids[mask],
            self.n_nodes,
            duration=min(horizon, self.duration),
            name=self.name,
        )

    def describe(self) -> str:
        return (
            f"FailureTrace({self.name or 'unnamed'}: {self.n_failures} failures, "
            f"{self.n_nodes} nodes, MTBF={self.mtbf / 3600.0:.2f}h)"
        )


def groups_for_target(trace_mtbf: float, target_platform_mtbf: float) -> int:
    """Number of trace groups so the merged stream hits the target MTBF.

    ``g = round(trace_mtbf / target_platform_mtbf)`` — e.g. LANL#2's 14.1 h
    against the 200k x 5 y platform's 788 s gives 64 groups (paper values).
    """
    trace_mtbf = check_positive("trace_mtbf", trace_mtbf)
    target = check_positive("target_platform_mtbf", target_platform_mtbf)
    g = int(round(trace_mtbf / target))
    return max(g, 1)


def platform_failure_stream(
    trace: FailureTrace,
    n_procs: int,
    n_groups: int,
    horizon: float,
    *,
    seed: SeedLike = None,
    node_mapping: str = "random",
    n_pairs: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merged platform failure stream from rotated trace copies (steps 2–4).

    The platform's ``n_procs`` processors are split into ``n_groups``
    groups.  Each group replays an independent rotation of *trace* (tiled
    if the simulation horizon outlives the log).

    When ``n_pairs`` is given (full replication with the engine's pair
    layout, pair ``i`` = processors ``i`` and ``n_pairs + i``), groups are
    *pair-aligned*: group ``g`` covers a contiguous block of pairs together
    with both replicas of each.  This keeps a process and its replica
    inside the same trace replay, so temporally correlated failures
    (cascades) can actually strike both halves of a pair — the effect the
    paper's LANL#2 experiment measures.  Without ``n_pairs``, groups are
    contiguous processor ranges.

    ``node_mapping`` selects how trace node ids land on group processors:

    * ``"random"`` (default): every failure strikes a uniformly random
      processor of its group.  This preserves the trace's *timing*
      (bursts, cascades, whole-log MTBF) — the properties the paper's
      methodology relies on — while avoiding placement artefacts.
    * ``"fixed"``: each trace node is bound to one fixed processor of the
      group, drawn as a random sample without replacement (nodes are
      folded modulo the group size first if the group is smaller than the
      traced machine).  This additionally preserves per-node identity
      (flaky nodes keep re-failing on the same processor), at the cost of
      concentrating failures on ``min(n_nodes, group_size)`` processors
      per group.

    Returns
    -------
    (times, proc_ids):
        Failure instants (sorted, within ``[0, horizon)``) and the struck
        processor id in ``[0, n_procs)``.
    """
    n_procs = check_positive_int("n_procs", n_procs)
    n_groups = check_positive_int("n_groups", n_groups)
    horizon = check_positive("horizon", horizon)
    if n_groups > n_procs:
        raise TraceError(f"cannot split {n_procs} processors into {n_groups} groups")
    if node_mapping not in ("random", "fixed"):
        raise TraceError(f"node_mapping must be 'random' or 'fixed', got {node_mapping!r}")
    if n_pairs is not None:
        if 2 * n_pairs != n_procs:
            raise TraceError(
                f"pair-aligned grouping requires n_procs == 2*n_pairs "
                f"(got {n_procs} procs, {n_pairs} pairs)"
            )
        if n_pairs % n_groups != 0 and n_pairs // n_groups == 0:
            raise TraceError(f"cannot split {n_pairs} pairs into {n_groups} groups")
    rng = as_generator(seed)

    group_size = n_procs // n_groups
    pairs_per_group = (n_pairs // n_groups) if n_pairs is not None else 0
    all_times: list[np.ndarray] = []
    all_procs: list[np.ndarray] = []
    base = trace.tile(horizon) if horizon > trace.duration else trace
    for g in range(n_groups):
        pivot = rng.uniform(0.0, base.duration)
        rotated = base.rotate(pivot)
        mask = rotated.times < horizon
        times = rotated.times[mask]
        nodes = rotated.node_ids[mask]
        if n_pairs is not None:
            # Pair-aligned: group g owns pairs [g*ppg, (g+1)*ppg) and both
            # replicas of each; a failure hits one of those 2*ppg slots.
            if node_mapping == "random":
                local = rng.integers(0, 2 * pairs_per_group, times.size)
            else:
                folded = nodes % (2 * pairs_per_group)
                placement = rng.permutation(2 * pairs_per_group)
                local = placement[folded]
            pair_idx = g * pairs_per_group + (local % pairs_per_group)
            procs = np.where(local < pairs_per_group, pair_idx, n_pairs + pair_idx)
        else:
            if node_mapping == "random":
                local = rng.integers(0, group_size, times.size)
            else:
                # Bind each (folded) node to a distinct random processor of
                # the group, so placement does not alias the pair layout.
                folded = nodes % group_size
                placement = rng.permutation(group_size)
                local = placement[folded]
            procs = g * group_size + local
        all_times.append(times)
        all_procs.append(procs)

    times = np.concatenate(all_times)
    procs = np.concatenate(all_procs)
    order = np.argsort(times, kind="stable")
    return times[order], procs[order]
