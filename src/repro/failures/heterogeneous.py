"""Heterogeneous platforms: non-uniform node reliabilities.

The paper concludes that partial replication "has potential benefit only
for heterogeneous platforms" (following Hussain et al. [25], who study
platforms whose node failure distributions are not identical).  This module
provides the substrate to test that boundary:

* :class:`HeterogeneousExponentialSource` — per-processor exponential
  failure rates, sampled by thinning a dominating Poisson process (exact,
  vectorised, cost independent of the number of *distinct* rates);
* :func:`two_tier_rates` — the canonical study layout: a fraction of the
  platform is ``factor`` times less reliable than the rest;
* :func:`arrange_rates_for_partial_replication` — permute per-processor
  rates so that the unreliable processors occupy the *paired* slots of the
  engine's layout (pair ``i`` = processors ``i`` and ``n_pairs + i``,
  standalone processors at the end), i.e. "replicate the flaky nodes".
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.failures.generator import FailureSource
from repro.util.validation import check_fraction, check_positive

__all__ = [
    "HeterogeneousExponentialSource",
    "two_tier_rates",
    "arrange_rates_for_partial_replication",
]


class HeterogeneousExponentialSource(FailureSource):
    """Exponential failures with a per-processor rate vector.

    Sampling uses thinning: events are drawn from a Poisson process at the
    *total* rate ``sum(rates)`` and each event strikes processor ``p`` with
    probability ``rates[p] / sum(rates)`` — exactly the superposition of
    the per-processor processes, with the same dead-slot-absorption
    convention as the homogeneous source.
    """

    def __init__(self, rates) -> None:
        rates_arr = np.asarray(rates, dtype=float)
        if rates_arr.ndim != 1 or rates_arr.size == 0:
            raise ParameterError("rates must be a non-empty 1-D array")
        if np.any(~np.isfinite(rates_arr)) or np.any(rates_arr < 0):
            raise ParameterError("rates must be finite and non-negative")
        if rates_arr.sum() <= 0:
            raise ParameterError("at least one processor must have a positive rate")
        self.rates = rates_arr
        self.n_procs = int(rates_arr.size)
        self._total_rate = float(rates_arr.sum())
        self._probabilities = rates_arr / rates_arr.sum()

    @property
    def total_rate(self) -> float:
        """Platform failure rate (failures per second)."""
        return self._total_rate

    @property
    def platform_mtbf(self) -> float:
        return 1.0 / self._total_rate

    def generate(self, t0: float, t1: float, rng: np.random.Generator):
        if t1 <= t0:
            return np.empty(0), np.empty(0, dtype=np.int64)
        n = rng.poisson((t1 - t0) * self._total_rate)
        times = np.sort(rng.uniform(t0, t1, n))
        procs = rng.choice(self.n_procs, size=n, p=self._probabilities)
        return times, procs.astype(np.int64)


def two_tier_rates(
    n_procs: int,
    mtbf_reliable: float,
    *,
    unreliable_fraction: float,
    unreliable_factor: float,
) -> np.ndarray:
    """Per-processor failure rates for a two-tier platform.

    The first ``round(n_procs * unreliable_fraction)`` processors fail
    ``unreliable_factor`` times faster than the rest (whose MTBF is
    *mtbf_reliable*).  Use
    :func:`arrange_rates_for_partial_replication` to align the tiers with
    a replication layout.
    """
    if n_procs < 1:
        raise ParameterError(f"n_procs must be >= 1, got {n_procs}")
    check_positive("mtbf_reliable", mtbf_reliable)
    check_fraction("unreliable_fraction", unreliable_fraction)
    check_positive("unreliable_factor", unreliable_factor)
    n_bad = int(round(n_procs * unreliable_fraction))
    rates = np.full(n_procs, 1.0 / mtbf_reliable)
    rates[:n_bad] *= unreliable_factor
    return rates


def arrange_rates_for_partial_replication(rates, n_pairs: int) -> np.ndarray:
    """Order *rates* so the least reliable processors fill the paired slots.

    The engines lay out a platform with ``b`` pairs as: pair ``i`` =
    processors ``i`` and ``b + i``; standalone processors occupy ids
    ``2b ..``.  Sorting descending by rate and dealing the worst ``2b``
    processors alternately into the two replica banks yields a platform
    where partial replication protects exactly the flaky nodes — the
    configuration Hussain et al. argue for.
    """
    rates_arr = np.asarray(rates, dtype=float)
    n_procs = rates_arr.size
    if n_pairs < 0 or 2 * n_pairs > n_procs:
        raise ParameterError(
            f"{n_pairs} pairs need {2 * n_pairs} processors, got {n_procs}"
        )
    order = np.argsort(-rates_arr, kind="stable")
    sorted_rates = rates_arr[order]
    out = np.empty_like(sorted_rates)
    # Worst 2b processors become the replica pairs (banks [0, b) and [b, 2b)).
    out[:n_pairs] = sorted_rates[0 : 2 * n_pairs : 2]
    out[n_pairs : 2 * n_pairs] = sorted_rates[1 : 2 * n_pairs : 2]
    # Remaining (most reliable) processors run standalone.
    out[2 * n_pairs :] = sorted_rates[2 * n_pairs :]
    return out
