"""Fitting failure distributions to observed inter-arrival times.

Practitioners feeding this library with their own failure logs need the
node MTBF and a distribution family; these maximum-likelihood fitters
cover the two families the failure literature uses most, plus a simple
model selector.  The test suite uses them to verify that the synthetic
LANL generators are recoverable (fitting a synthesised trace returns the
shape it was built with).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConvergenceError, ParameterError
from repro.failures.distributions import Exponential, InterArrivalDistribution, Weibull

__all__ = ["FitResult", "fit_exponential", "fit_weibull", "best_fit"]


@dataclass(frozen=True)
class FitResult:
    """Outcome of a maximum-likelihood fit."""

    distribution: InterArrivalDistribution
    log_likelihood: float
    n_samples: int

    @property
    def aic(self) -> float:
        """Akaike information criterion (lower is better)."""
        k = 1 if isinstance(self.distribution, Exponential) else 2
        return 2.0 * k - 2.0 * self.log_likelihood


def _validate_gaps(gaps) -> np.ndarray:
    arr = np.asarray(gaps, dtype=float)
    arr = arr[arr > 0]
    if arr.size < 2:
        raise ParameterError("need at least two positive inter-arrival times")
    return arr


def fit_exponential(gaps) -> FitResult:
    """MLE exponential fit: the rate is the reciprocal sample mean."""
    arr = _validate_gaps(gaps)
    mean = float(arr.mean())
    loglik = float(-arr.size * math.log(mean) - arr.sum() / mean)
    return FitResult(Exponential(mean=mean), loglik, arr.size)


def fit_weibull(gaps, *, tol: float = 1e-10, max_iter: int = 200) -> FitResult:
    """MLE Weibull fit via Newton iteration on the shape equation.

    The profile-likelihood shape equation is
    ``1/k = sum(x^k ln x)/sum(x^k) - mean(ln x)``; Newton's method on
    ``f(k) = 1/k + mean(ln x) - sum(x^k ln x)/sum(x^k)`` converges in a
    handful of iterations from the common ``k0 = 1`` start.
    """
    arr = _validate_gaps(gaps)
    # Normalise for numerical stability (scale-invariance of the shape).
    scaled = arr / arr.mean()
    log_x = np.log(scaled)
    mean_log = float(log_x.mean())

    k = 1.0
    for _ in range(max_iter):
        xk = np.power(scaled, k)
        sum_xk = float(xk.sum())
        sum_xk_log = float((xk * log_x).sum())
        sum_xk_log2 = float((xk * log_x * log_x).sum())
        f = 1.0 / k + mean_log - sum_xk_log / sum_xk
        fprime = -1.0 / (k * k) - (sum_xk_log2 * sum_xk - sum_xk_log**2) / sum_xk**2
        step = f / fprime
        k_new = k - step
        if k_new <= 0:
            k_new = k / 2.0
        if abs(k_new - k) < tol * max(k, 1.0):
            k = k_new
            break
        k = k_new
    else:
        raise ConvergenceError("Weibull shape iteration did not converge")

    scale_scaled = float(np.power(np.power(scaled, k).mean(), 1.0 / k))
    scale = scale_scaled * float(arr.mean())
    mean = scale * math.gamma(1.0 + 1.0 / k)
    dist = Weibull(mean=mean, shape=k)
    # Log-likelihood with the fitted parameters (original scale).
    n = arr.size
    loglik = float(
        n * (math.log(k) - k * math.log(scale))
        + (k - 1.0) * np.log(arr).sum()
        - np.power(arr / scale, k).sum()
    )
    return FitResult(dist, loglik, n)


def best_fit(gaps) -> FitResult:
    """Fit both families and return the AIC-preferred one."""
    candidates = [fit_exponential(gaps), fit_weibull(gaps)]
    return min(candidates, key=lambda r: r.aic)
