"""Failure-model substrate: distributions, traces, generators, diagnostics."""

from repro.failures.correlation import (
    cascade_fraction,
    dispersion_index,
    exponential_ks_statistic,
    is_correlated,
)
from repro.failures.distributions import (
    Exponential,
    Gamma,
    InterArrivalDistribution,
    LogNormal,
    Weibull,
    distribution_from_name,
)
from repro.failures.fitting import FitResult, best_fit, fit_exponential, fit_weibull
from repro.failures.generator import (
    ExponentialFailureSource,
    FailureSource,
    FailureStream,
    RenewalFailureSource,
    TraceFailureSource,
)
from repro.failures.heterogeneous import (
    HeterogeneousExponentialSource,
    arrange_rates_for_partial_replication,
    two_tier_rates,
)
from repro.failures.lanl import (
    LANL2_SPEC,
    LANL18_SPEC,
    LanlTraceSpec,
    make_lanl2_like,
    make_lanl18_like,
    synthesize_trace,
)
from repro.failures.traces import FailureTrace, groups_for_target, platform_failure_stream

__all__ = [
    "InterArrivalDistribution",
    "Exponential",
    "Weibull",
    "LogNormal",
    "Gamma",
    "distribution_from_name",
    "FailureTrace",
    "platform_failure_stream",
    "groups_for_target",
    "LanlTraceSpec",
    "LANL2_SPEC",
    "LANL18_SPEC",
    "synthesize_trace",
    "make_lanl2_like",
    "make_lanl18_like",
    "FailureSource",
    "ExponentialFailureSource",
    "RenewalFailureSource",
    "TraceFailureSource",
    "FailureStream",
    "HeterogeneousExponentialSource",
    "two_tier_rates",
    "arrange_rates_for_partial_replication",
    "FitResult",
    "fit_exponential",
    "fit_weibull",
    "best_fit",
    "dispersion_index",
    "cascade_fraction",
    "exponential_ks_statistic",
    "is_correlated",
]
