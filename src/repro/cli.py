"""Command-line interface: ``repro-sim`` (or ``python -m repro``).

Subcommands
-----------
``figure``      run one paper experiment and print its table
``list``        list available experiments
``periods``     print the optimal periods for a configuration
``simulate``    run one strategy at one configuration point
``sweep``       journaled multi-point MTBF sweep (crash-safe; ``--resume``)
``trace``       synthesise a LANL-like trace to a CSV file
``obs``         inspect observability artifacts (manifests, JSONL traces)
``cache``       inspect or clear the on-disk result cache
``worker``      serve chunks for a tcp-backend coordinator

Examples
--------
.. code-block:: shell

    repro-sim list
    repro-sim figure fig5-c60 --quick
    repro-sim figure fig5-c60 --full --jobs -1
    repro-sim periods --mtbf-years 5 --pairs 100000 --checkpoint 60
    repro-sim simulate restart --mtbf-years 5 --pairs 100000 --checkpoint 60
    repro-sim trace lanl2 --out lanl2.csv --seed 7
    repro-sim figure fig5-c60 --jobs 4 --log-json run.jsonl
    repro-sim obs tail run.jsonl --lines 20
    repro-sim figure fig9 --full --cache-dir ~/.cache/repro-sim
    repro-sim cache ls --cache-dir ~/.cache/repro-sim
    repro-sim figure fig9 --jobs 4 --backend tcp
    repro-sim worker --connect 10.0.0.5:7077
    repro-sim sweep restart --jobs 4 --backend tcp --telemetry-port 9090
    repro-sim obs top http://127.0.0.1:9090

``--engine NAME`` (or the ``REPRO_ENGINE`` environment variable) selects
the simulation engine — ``batch`` (struct-of-arrays per-phase engine,
fastest at scale), ``sampled``, ``lockstep`` or ``trace``; entry points an
engine does not apply to keep their defaults (see
:mod:`repro.simulation.runner`).  ``--jobs N`` (or the ``REPRO_JOBS``
environment variable) fans the Monte-Carlo replications out over N worker
processes; results are bit-identical for every N (see
:mod:`repro.parallel`).  ``--backend``
(or ``REPRO_BACKEND``) selects the executor backend: ``process`` (local
pool, the default), ``tcp`` (socket work queue serving local or remote
``repro-sim worker`` processes) or ``serial``.  ``--log-json PATH``
(or ``REPRO_TRACE``) streams structured trace events to a JSONL file
(see :mod:`repro.obs`).  ``--cache-dir PATH`` (or ``REPRO_CACHE_DIR``)
stores completed sweep points and chunks on disk so an interrupted run
resumes bit-identically; ``--no-cache`` disables caching for one
invocation (see :mod:`repro.cache`).
"""

from __future__ import annotations

import argparse
import sys

from repro.util.units import YEAR

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Reproduction of 'Replication Is More Efficient Than You Think' "
            "(SC'19): analytic formulas and Monte-Carlo simulation."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available experiments")

    p_fig = sub.add_parser("figure", help="run a paper experiment")
    p_fig.add_argument("name", help="experiment name (see 'list')")
    p_fig.add_argument("--full", action="store_true", help="paper-scale sample counts")
    p_fig.add_argument("--seed", type=int, default=2019)
    _add_engine_arg(p_fig)
    _add_jobs_arg(p_fig)
    _add_obs_arg(p_fig)
    _add_cache_arg(p_fig)
    p_fig.add_argument("--json", metavar="PATH", help="also save the table as JSON")
    p_fig.add_argument(
        "--plot", action="store_true", help="render the series as an ASCII chart"
    )

    p_per = sub.add_parser("periods", help="print optimal checkpointing periods")
    _add_platform_args(p_per)

    p_sim = sub.add_parser("simulate", help="simulate one strategy")
    p_sim.add_argument(
        "strategy",
        choices=["restart", "no-restart", "restart-on-failure", "no-replication"],
    )
    _add_platform_args(p_sim)
    p_sim.add_argument("--period", type=float, help="period in seconds (default: optimal)")
    p_sim.add_argument("--periods", type=int, default=100, help="periods per run")
    p_sim.add_argument("--runs", type=int, default=200)
    p_sim.add_argument("--restart-factor", type=float, default=1.0, help="C^R / C in [1,2]")
    p_sim.add_argument("--seed", type=int, default=None)
    _add_engine_arg(p_sim)
    _add_jobs_arg(p_sim)
    _add_obs_arg(p_sim)
    _add_cache_arg(p_sim)

    p_sw = sub.add_parser(
        "sweep",
        help=(
            "journaled MTBF sweep of one strategy (crash-safe: resume a "
            "killed sweep bit-identically with --resume)"
        ),
    )
    p_sw.add_argument(
        "strategy",
        nargs="?",
        choices=["restart", "no-restart", "restart-on-failure", "no-replication"],
        help="recovery strategy to sweep (omit with --resume)",
    )
    p_sw.add_argument(
        "--mtbf-years", metavar="Y1,Y2,...", default="1,2,5,10,20",
        help="comma-separated individual-MTBF sweep points, in years",
    )
    p_sw.add_argument("--pairs", type=int, default=100_000, help="replicated pairs b")
    p_sw.add_argument("--checkpoint", type=float, default=60.0, help="checkpoint cost C (s)")
    p_sw.add_argument("--period", type=float, help="period in seconds (default: optimal)")
    p_sw.add_argument("--periods", type=int, default=100, help="periods per run")
    p_sw.add_argument("--runs", type=int, default=200)
    p_sw.add_argument(
        "--restart-factor", type=float, default=1.0, help="C^R / C in [1,2]"
    )
    p_sw.add_argument("--seed", type=int, default=2019)
    p_sw.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="replications per dispatched chunk (journaled: resume reuses it)",
    )
    p_sw.add_argument(
        "--save-runs", metavar="DIR", default=None,
        help="also save each point's full RunSet as DIR/point-NNN.json",
    )
    p_sw.add_argument(
        "--target-ci", type=float, default=None, metavar="HW",
        help=(
            "adaptive sampling: stop each point once the 0.95-level "
            "confidence half-width of its overhead mean is <= HW "
            "(journaled; REPRO_TARGET_CI sets a default)"
        ),
    )
    p_sw.add_argument(
        "--max-runs", type=int, default=None, metavar="N",
        help=(
            "cap on runs per adaptive point (default: --runs); raise it to "
            "grant hard points the budget saved on easy ones"
        ),
    )
    p_sw.add_argument(
        "--journal", metavar="PATH", default=None,
        help=(
            "write-ahead journal file (default: "
            "<cache-dir>/journal/sweep-<hash>.jsonl)"
        ),
    )
    p_sw.add_argument(
        "--resume", action="store_true",
        help=(
            "resume a crashed or interrupted sweep from its journal "
            "(the newest resumable one under the cache's journal "
            "directory unless --journal names it)"
        ),
    )
    _add_engine_arg(p_sw)
    _add_jobs_arg(p_sw)
    _add_obs_arg(p_sw)
    _add_cache_arg(p_sw)

    p_tr = sub.add_parser("trace", help="synthesise a LANL-like failure trace")
    p_tr.add_argument("kind", choices=["lanl2", "lanl18"])
    p_tr.add_argument("--out", required=True, help="output CSV path")
    p_tr.add_argument("--seed", type=int, default=None)

    p_rep = sub.add_parser(
        "report", help="run experiments and write a combined Markdown report"
    )
    p_rep.add_argument("--out", default="report", help="output directory")
    p_rep.add_argument(
        "--only", nargs="*", metavar="NAME",
        help="experiment names (default: all; see 'list')",
    )
    p_rep.add_argument("--full", action="store_true", help="paper-scale sample counts")
    p_rep.add_argument("--seed", type=int, default=2019)
    _add_engine_arg(p_rep)
    _add_jobs_arg(p_rep)
    _add_obs_arg(p_rep)
    _add_cache_arg(p_rep)

    p_obs = sub.add_parser(
        "obs", help="inspect observability artifacts (manifests, JSONL traces)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_man = obs_sub.add_parser(
        "manifest", help="pretty-print a run manifest (or a RunSet carrying one)"
    )
    p_obs_man.add_argument("path", help="manifest JSON or runset JSON file")
    p_obs_tail = obs_sub.add_parser("tail", help="print the last events of a JSONL trace")
    p_obs_tail.add_argument("path", help="JSONL trace file")
    p_obs_tail.add_argument(
        "--lines", "-n", type=int, default=10, metavar="N", help="events to show"
    )
    p_obs_rep = obs_sub.add_parser(
        "report",
        help=(
            "analyze a JSONL trace: per-span timing, chunk timeline (Gantt), "
            "chunk-latency histogram, parallel efficiency, retry/fallback/"
            "cache-hit counts"
        ),
    )
    p_obs_rep.add_argument("path", help="JSONL trace file")
    p_obs_rep.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker count for the efficiency denominator "
             "(default: from the trace)",
    )
    p_obs_rep.add_argument(
        "--width", type=int, default=60, metavar="COLS",
        help="chart width in characters",
    )
    p_obs_rep.add_argument(
        "--straggler-k", type=float, default=2.0, metavar="K",
        help="flag chunks slower than K x the median chunk wall time",
    )
    p_obs_top = obs_sub.add_parser(
        "top",
        help=(
            "live terminal view of a running coordinator's /progress and "
            "/workers telemetry endpoints"
        ),
    )
    p_obs_top.add_argument(
        "endpoint",
        help=(
            "telemetry base URL or HOST:PORT (printed by --telemetry-port "
            "at startup, e.g. http://127.0.0.1:9090)"
        ),
    )
    p_obs_top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh period in seconds",
    )
    p_obs_top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    p_obs_top.add_argument(
        "--timeout", type=float, default=2.0, metavar="S",
        help="per-request HTTP timeout in seconds",
    )

    p_wk = sub.add_parser(
        "worker", help="serve chunks for a tcp-backend coordinator"
    )
    p_wk.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (printed by / passed to the dispatching run)",
    )
    p_wk.add_argument(
        "--max-chunks", type=int, default=None, metavar="N",
        help="disconnect after executing N chunks (fault-injection testing)",
    )

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_ls = cache_sub.add_parser("ls", help="list cached entries")
    _add_cache_dir_arg(p_cache_ls)
    p_cache_clear = cache_sub.add_parser("clear", help="delete every cached entry")
    _add_cache_dir_arg(p_cache_clear)
    return parser


def _add_platform_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mtbf-years", type=float, default=5.0, help="individual MTBF (years)")
    p.add_argument("--pairs", type=int, default=100_000, help="replicated pairs b")
    p.add_argument("--checkpoint", type=float, default=60.0, help="checkpoint cost C (s)")


def _add_engine_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--engine",
        metavar="NAME",
        default=None,
        help=(
            "simulation engine: batch (struct-of-arrays per-phase engine, "
            "fastest at scale), sampled, lockstep or trace (default: the "
            "REPRO_ENGINE env var, else per-strategy defaults); entry "
            "points the engine does not apply to keep their defaults"
        ),
    )


def _add_jobs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan Monte-Carlo replications out over N worker processes "
            "(-1 = all cores; default: serial, or the REPRO_JOBS env var); "
            "results are identical for every N"
        ),
    )
    p.add_argument(
        "--backend",
        choices=["serial", "process", "tcp"],
        default=None,
        help=(
            "executor backend for chunk dispatch (default: the "
            "REPRO_BACKEND env var, else 'process'); results are "
            "identical for every backend"
        ),
    )
    p.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help=(
            "seeded deterministic fault injection, e.g. "
            "'seed=7,kill=0.2,delay=0.1' (kill/delay/corrupt/drop/dup "
            "probabilities per chunk attempt; default: the REPRO_CHAOS "
            "env var, else off); results are identical with or without it"
        ),
    )


def _add_obs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help=(
            "append structured trace events (chunk spans, engine stats, sweep "
            "progress) to PATH as JSONL; equivalent to exporting REPRO_TRACE"
        ),
    )
    p.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "after the run, dump the merged metrics registry (counters, "
            "gauges, histograms — including everything workers recorded) to "
            "PATH: Prometheus text for .prom/.txt, JSON otherwise"
        ),
    )
    p.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve live GET /metrics, /metrics.json, /progress, /workers "
            "and /healthz over HTTP on 127.0.0.1:PORT for the duration of "
            "the run (0 = pick an ephemeral port, printed at startup; "
            "equivalent to exporting REPRO_TELEMETRY_PORT)"
        ),
    )


def _add_cache_dir_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="result cache directory (default: the REPRO_CACHE_DIR env var)",
    )


def _add_cache_arg(p: argparse.ArgumentParser) -> None:
    group = p.add_mutually_exclusive_group()
    group.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help=(
            "store completed sweep points / chunks under PATH so an "
            "interrupted run resumes bit-identically; equivalent to "
            "exporting REPRO_CACHE_DIR"
        ),
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable result caching even if REPRO_CACHE_DIR is set",
    )


def _apply_engine(args: argparse.Namespace) -> None:
    """Validate ``--engine`` eagerly and export it as ``REPRO_ENGINE``.

    Exporting (rather than threading a parameter through every driver)
    makes the choice ambient: entry points pick it up via
    :func:`repro.simulation.runner.resolve_engine`, and worker processes
    inherit it.  Validation happens here so a typo fails before any
    simulation starts, with the same ParameterError the API layer raises.
    """
    engine = getattr(args, "engine", None)
    if engine is None:
        return
    import os

    from repro.exceptions import ParameterError
    from repro.simulation.runner import ENGINE_ENV_VAR, ENGINES

    if engine not in ENGINES:
        raise ParameterError(
            f"--engine {engine!r} is not a known engine; "
            f"valid engines: {', '.join(ENGINES)}"
        )
    os.environ[ENGINE_ENV_VAR] = engine


def _apply_jobs(args: argparse.Namespace) -> None:
    """Install ``--jobs`` / ``--backend`` / ``--chaos`` as the default
    context for this run."""
    jobs = getattr(args, "jobs", None)
    backend = getattr(args, "backend", None)
    chaos = getattr(args, "chaos", None)
    chunk_size = getattr(args, "chunk_size", None)
    if jobs is None and backend is None and chaos is None and chunk_size is None:
        return
    from repro.parallel import ExecutionContext, set_default_execution
    from repro.parallel.context import _env_jobs

    if jobs is None:
        jobs = _env_jobs() or 1
    set_default_execution(
        ExecutionContext(
            n_jobs=jobs, backend=backend, chunk_size=chunk_size, chaos=chaos
        )
    )


def _apply_obs(args: argparse.Namespace) -> None:
    """Activate ``--log-json`` tracing and ``--telemetry-port`` serving."""
    log_json = getattr(args, "log_json", None)
    if log_json is not None:
        from repro.obs import enable_trace

        enable_trace(log_json)
    port = getattr(args, "telemetry_port", None)
    if port is not None:
        import os

        from repro.obs.server import TELEMETRY_ENV_VAR, ensure_telemetry

        server = ensure_telemetry(port)
        # Exported so every ExecutionContext built later in this run (and
        # any helper subprocess that dispatches chunks itself) resolves the
        # same telemetry default without threading the flag everywhere.
        os.environ[TELEMETRY_ENV_VAR] = str(port)
        print(f"telemetry: {server.url}", file=sys.stderr)


def _apply_cache(args: argparse.Namespace) -> None:
    """Install ``--cache-dir`` / honour ``--no-cache`` for this run."""
    import os

    from repro.cache import CACHE_DIR_ENV_VAR, RunCache, set_default_cache

    if getattr(args, "no_cache", False):
        os.environ.pop(CACHE_DIR_ENV_VAR, None)
        set_default_cache(None)
        return
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        set_default_cache(RunCache(cache_dir))
        # exported so any helper subprocess resolves the same store
        os.environ[CACHE_DIR_ENV_VAR] = str(cache_dir)


def main(argv: list[str] | None = None) -> int:
    from repro.exceptions import ParameterError

    args = build_parser().parse_args(argv)
    try:
        status = _dispatch(args)
    except BrokenPipeError:  # pragma: no cover
        return 0
    except ParameterError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if status == 0 and getattr(args, "metrics_out", None):
        from repro.obs.metrics import save_metrics

        save_metrics(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return status


def _dispatch(args: argparse.Namespace) -> int:
    _apply_engine(args)
    # obs before jobs: --telemetry-port exports REPRO_TELEMETRY_PORT, which
    # the ExecutionContext _apply_jobs builds resolves as its default.
    _apply_obs(args)
    _apply_jobs(args)
    _apply_cache(args)
    if args.command == "list":
        from repro.experiments import ALL_EXPERIMENTS

        for name in sorted(ALL_EXPERIMENTS):
            print(name)
        return 0

    if args.command == "figure":
        from repro.experiments import ALL_EXPERIMENTS

        try:
            driver = ALL_EXPERIMENTS[args.name]
        except KeyError:
            print(
                f"unknown experiment {args.name!r}; run 'repro-sim list'",
                file=sys.stderr,
            )
            return 2
        result = driver(quick=not args.full, seed=args.seed)
        print(result.to_text())
        if args.plot:
            from repro.exceptions import ParameterError
            from repro.util.ascii_chart import chart_experiment

            try:
                print()
                print(chart_experiment(result))
            except ParameterError as exc:
                print(f"(not plottable: {exc})", file=sys.stderr)
        if args.json:
            from repro.io import save_experiment

            save_experiment(result, args.json)
            print(f"saved: {args.json}")
        return 0

    if args.command == "periods":
        from repro.core import mtti, no_restart_period, restart_period, young_daly_period

        mu = args.mtbf_years * YEAR
        b, c = args.pairs, args.checkpoint
        print(f"platform: b={b:,} pairs (N={2 * b:,}), mu={args.mtbf_years}y, C={c:g}s")
        print(f"MTTI M_2b            : {mtti(mu, b):,.0f} s")
        print(f"T_opt (Young/Daly)   : {young_daly_period(mu, c, 2 * b):,.0f} s")
        print(f"T_MTTI^no (Eq. 11)   : {no_restart_period(mu, c, b):,.0f} s")
        print(f"T_opt^rs  (Eq. 20)   : {restart_period(mu, c, b):,.0f} s")
        return 0

    if args.command == "simulate":
        return _run_simulate(args)

    if args.command == "sweep":
        return _run_sweep(args)

    if args.command == "trace":
        from repro.failures import make_lanl2_like, make_lanl18_like
        from repro.io import write_trace

        trace = make_lanl2_like(args.seed) if args.kind == "lanl2" else make_lanl18_like(args.seed)
        write_trace(trace, args.out)
        print(f"wrote {trace.describe()} to {args.out}")
        return 0

    if args.command == "obs":
        return _run_obs(args)

    if args.command == "cache":
        return _run_cache(args)

    if args.command == "worker":
        from repro.exceptions import ParameterError
        from repro.parallel.backends.tcp import parse_address, serve_worker

        try:
            host, port = parse_address(args.connect, source="--connect")
        except ParameterError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            # Signal handlers make SIGTERM/SIGINT a graceful drain: the
            # in-flight chunk finishes, its result is sent, and we exit 0.
            executed = serve_worker(
                host, port, max_chunks=args.max_chunks,
                install_signal_handlers=True,
            )
        except (OSError, ConnectionError) as exc:
            print(f"cannot serve {args.connect}: {exc}", file=sys.stderr)
            return 2
        print(f"worker done: {executed} chunks", file=sys.stderr)
        return 0

    if args.command == "report":
        from repro.exceptions import ParameterError
        from repro.experiments.report import generate_report

        try:
            path = generate_report(
                args.out,
                names=args.only,
                quick=not args.full,
                seed=args.seed,
                progress=print,
            )
        except ParameterError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(f"report written to {path}")
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def _run_obs(args: argparse.Namespace) -> int:
    import json

    from repro.exceptions import ParameterError
    from repro.obs import RunManifest, format_event, read_events

    if args.obs_command == "manifest":
        try:
            payload = json.loads(open(args.path).read())
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.path}: {exc}", file=sys.stderr)
            return 2
        if not isinstance(payload, dict):
            print(f"{args.path} is not a JSON object", file=sys.stderr)
            return 2
        # Accept a bare manifest, a manifest file written by save_manifest,
        # or a runset file whose meta carries a manifest.
        if "manifest" in payload.get("meta", {}):
            payload = payload["meta"]["manifest"]
        payload = {k: v for k, v in payload.items() if k != "schema"}
        try:
            manifest = RunManifest.from_dict(payload)
        except ParameterError as exc:
            print(f"{args.path}: {exc}", file=sys.stderr)
            return 2
        print(manifest.describe())
        return 0

    if args.obs_command == "tail":
        try:
            events = read_events(args.path)
        except OSError as exc:
            print(f"cannot read {args.path}: {exc}", file=sys.stderr)
            return 2
        for record in events[-max(args.lines, 0):]:
            print(format_event(record))
        return 0

    if args.obs_command == "report":
        from repro.obs.report import analyze_trace, render_report

        try:
            report = analyze_trace(
                args.path, n_jobs=args.jobs, straggler_k=args.straggler_k
            )
            text = render_report(report, width=max(args.width, 20))
        except (OSError, ParameterError) as exc:
            print(f"cannot analyze {args.path}: {exc}", file=sys.stderr)
            return 2
        print(text)
        return 0

    if args.obs_command == "top":
        return _run_obs_top(args)

    raise AssertionError(f"unhandled obs command {args.obs_command}")  # pragma: no cover


def _fetch_json(url: str, timeout: float) -> dict:
    import json
    import urllib.request

    with urllib.request.urlopen(url, timeout=timeout) as resp:  # noqa: S310
        return json.loads(resp.read().decode("utf-8"))


def _top_frame(base: str, progress: dict, workers: dict) -> str:
    """One ``obs top`` frame rendered from /progress and /workers payloads."""
    lines = [
        f"repro-sim telemetry  {base}  pid={progress.get('pid')}  "
        f"uptime={progress.get('uptime_s', 0.0):.0f}s"
    ]
    sweep = progress.get("sweep")
    if sweep:
        state = "running" if sweep.get("active") else "done"
        labels = sweep.get("point_labels") or {}
        label_s = " ".join(f"{k}={v}" for k, v in sorted(labels.items()))
        eta = sweep.get("eta_s")
        line = (
            f"sweep     {sweep.get('label')}: "
            f"{sweep.get('points_done')}/{sweep.get('n_points')} points ({state})"
        )
        if sweep.get("point") is not None and sweep.get("active"):
            line += f"  now #{sweep['point']}" + (f" {label_s}" if label_s else "")
        if eta is not None:
            line += f"  eta {eta:.0f}s"
        lines.append(line)
    dispatch = progress.get("dispatch")
    if dispatch:
        total = dispatch.get("total_chunks") or 0
        done = dispatch.get("chunks_done") or 0
        state = "running" if dispatch.get("active") else "done"
        width = 30
        filled = int(round(width * done / total)) if total else 0
        line = (
            f"dispatch  [{'#' * filled}{'.' * (width - filled)}] "
            f"{done}/{total} chunks ({state}, {dispatch.get('backend')}"
            f" x{dispatch.get('n_jobs')})"
        )
        extras = []
        if dispatch.get("in_flight"):
            extras.append(f"in-flight {len(dispatch['in_flight'])}")
        if dispatch.get("cache_hits"):
            extras.append(f"cache {dispatch['cache_hits']}")
        if dispatch.get("retries"):
            extras.append(f"retries {dispatch['retries']}")
        if dispatch.get("rate_chunks_per_s"):
            extras.append(f"{dispatch['rate_chunks_per_s']:.1f} chk/s")
        if dispatch.get("eta_s") is not None:
            extras.append(f"eta {dispatch['eta_s']:.0f}s")
        if extras:
            line += "  " + "  ".join(extras)
        lines.append(line)
        if dispatch.get("adaptive"):
            hw = dispatch.get("halfwidth")
            target = dispatch.get("target_ci")
            lines.append(
                f"adaptive  wave {dispatch.get('wave')}/{dispatch.get('n_waves')}"
                + (f"  halfwidth {hw:.3e}" if hw is not None else "")
                + (f"  target {target:g}" if target is not None else "")
            )
    rows = (workers or {}).get("workers") or []
    if rows:
        lines.append("")
        lines.append(
            f"{'worker':<28} {'state':<5} {'hb-age':>7} {'chunk':>6} "
            f"{'done':>5} {'chk/s':>6}"
        )
        for row in rows:
            in_flight = row.get("in_flight")
            lines.append(
                f"{row['id']:<28} "
                f"{'up' if row.get('connected') else 'down':<5} "
                f"{row.get('heartbeat_age_s', 0.0):>6.1f}s "
                f"{in_flight if in_flight is not None else '-':>6} "
                f"{row.get('chunks_completed', 0):>5} "
                f"{row.get('throughput_chunks_per_s', 0.0):>6.2f}"
            )
    return "\n".join(lines)


def _run_obs_top(args: argparse.Namespace) -> int:
    import time

    base = args.endpoint
    if "://" not in base:
        base = f"http://{base}"
    base = base.rstrip("/")
    frames = 0
    while True:
        try:
            progress = _fetch_json(base + "/progress", args.timeout)
            workers = _fetch_json(base + "/workers", args.timeout)
        except (OSError, ValueError) as exc:
            if frames:
                # The endpoint vanishing after a successful frame is the
                # normal way a watched run ends.
                print(f"{base} gone ({exc}); run finished")
                return 0
            print(f"cannot reach {base}: {exc}", file=sys.stderr)
            return 2
        frames += 1
        frame = _top_frame(base, progress, workers)
        if args.once:
            print(frame)
            return 0
        sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
        sys.stdout.flush()
        time.sleep(max(args.interval, 0.1))


def _run_cache(args: argparse.Namespace) -> int:
    import os

    from repro.cache import CACHE_DIR_ENV_VAR, RunCache

    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    if not cache_dir:
        print(
            f"no cache directory: pass --cache-dir or set {CACHE_DIR_ENV_VAR}",
            file=sys.stderr,
        )
        return 2
    cache = RunCache(cache_dir)

    if args.cache_command == "ls":
        entries = cache.entries()
        for entry in entries:
            print(entry.describe())
        print(f"{len(entries)} entries in {cache.root}")
        return 0

    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
        return 0

    raise AssertionError(f"unhandled cache command {args.cache_command}")  # pragma: no cover


def _run_sweep(args: argparse.Namespace) -> int:
    import os

    from repro.cache import CACHE_DIR_ENV_VAR, resolve_cache
    from repro.exceptions import ParameterError
    from repro.sweep import (
        SweepRequest,
        default_journal_path,
        find_resumable_journal,
        load_request,
        run_sweep,
    )

    journal_path = args.journal
    if args.resume:
        if journal_path is None:
            cache = resolve_cache()
            if cache is None:
                print(
                    "cannot locate a journal to resume: pass --journal PATH, "
                    f"or --cache-dir / {CACHE_DIR_ENV_VAR} so the default "
                    "journal directory exists",
                    file=sys.stderr,
                )
                return 2
            journal_path = find_resumable_journal(os.path.join(cache.root, "journal"))
        request, status = load_request(journal_path)
        if status == "complete":
            print(f"{journal_path}: sweep already complete", file=sys.stderr)
            return 0
        print(f"resuming {request.strategy} sweep from {journal_path} ({status})")
    else:
        if args.strategy is None:
            print("sweep: strategy is required (or pass --resume)", file=sys.stderr)
            return 2
        try:
            points = tuple(
                float(part) for part in str(args.mtbf_years).split(",") if part.strip()
            )
        except ValueError:
            raise ParameterError(
                f"--mtbf-years must be a comma-separated float list, "
                f"got {args.mtbf_years!r}"
            ) from None
        request = SweepRequest(
            strategy=args.strategy,
            mtbf_years=points,
            pairs=args.pairs,
            checkpoint=args.checkpoint,
            period=args.period,
            periods=args.periods,
            runs=args.runs,
            restart_factor=args.restart_factor,
            seed=args.seed,
            chunk_size=args.chunk_size,
            save_runs=args.save_runs,
            target_ci=args.target_ci,
            max_runs=args.max_runs,
        )
        if journal_path is None:
            journal_path = default_journal_path(request)

    # The sweep needs an ambient context so replications take the chunked
    # (and therefore chunk-cached, journal-recorded) execution path even
    # without --jobs.
    from repro.parallel import ExecutionContext, get_default_execution, set_default_execution

    if get_default_execution() is None:
        set_default_execution(
            ExecutionContext(n_jobs=1, chunk_size=request.chunk_size)
        )

    outcome = run_sweep(
        request,
        journal_path=journal_path,
        resume=args.resume,
        progress=print,
    )
    if not outcome.complete:
        print(
            f"interrupted; resume with: repro-sim sweep --resume "
            f"--journal {outcome.journal_path}",
            file=sys.stderr,
        )
        return 3
    print(f"strategy          : {request.strategy}")
    for row in outcome.rows:
        print(
            f"mtbf {row['mtbf_years']:>6g}y  period {row['period_s']:>12,.0f}s  "
            f"overhead {row['overhead']:.4%} ± {row['halfwidth']:.4%}  "
            f"({row['n_runs']} runs)"
        )
    print(f"journal           : {outcome.journal_path}")
    return 0


def _run_simulate(args: argparse.Namespace) -> int:
    from repro.core import no_restart_period, restart_period, young_daly_period
    from repro.platform_model import CheckpointCosts
    from repro.simulation import (
        io_pressure,
        simulate_no_replication,
        simulate_no_restart,
        simulate_restart,
        simulate_restart_on_failure,
    )

    mu = args.mtbf_years * YEAR
    b, c = args.pairs, args.checkpoint
    costs = CheckpointCosts(checkpoint=c, restart_factor=args.restart_factor)

    if args.strategy == "restart":
        period = args.period or restart_period(mu, costs.restart_checkpoint, b)
        runs = simulate_restart(
            mtbf=mu, n_pairs=b, period=period, costs=costs,
            n_periods=args.periods, n_runs=args.runs, seed=args.seed,
        )
    elif args.strategy == "no-restart":
        period = args.period or no_restart_period(mu, c, b)
        runs = simulate_no_restart(
            mtbf=mu, n_pairs=b, period=period, costs=costs,
            n_periods=args.periods, n_runs=args.runs, seed=args.seed,
        )
    elif args.strategy == "restart-on-failure":
        period = args.period or restart_period(mu, costs.restart_checkpoint, b)
        runs = simulate_restart_on_failure(
            mtbf=mu, n_pairs=b, work_target=args.periods * period, costs=costs,
            n_runs=args.runs, seed=args.seed,
        )
    else:  # no-replication
        n = 2 * b
        period = args.period or young_daly_period(mu, c, n)
        runs = simulate_no_replication(
            mtbf=mu, n_procs=n, period=period, costs=costs,
            n_periods=args.periods, n_runs=args.runs, seed=args.seed,
        )

    summary = runs.overhead_summary()
    pressure = io_pressure(runs)
    print(f"strategy          : {runs.label}")
    print(f"period            : {period:,.0f} s")
    print(f"overhead          : {summary.mean:.4%} +/- {summary.halfwidth:.4%} ({summary.n_runs} runs)")
    print(f"crashes per run   : {runs.n_fatal.mean():.3f}")
    print(f"failures per run  : {runs.n_failures.mean():.1f}")
    print(f"checkpoints / day : {pressure.checkpoints_per_day:.2f}")
    print(f"I/O time fraction : {pressure.io_time_fraction:.4%}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
