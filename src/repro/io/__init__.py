"""On-disk formats: failure-trace CSV and result JSON."""

from repro.io.results_io import (
    load_experiment,
    load_manifest,
    load_runset,
    save_experiment,
    save_manifest,
    save_runset,
)
from repro.io.tracefile import read_trace, trace_from_csv, trace_to_csv, write_trace

__all__ = [
    "write_trace",
    "read_trace",
    "trace_to_csv",
    "trace_from_csv",
    "save_runset",
    "load_runset",
    "save_experiment",
    "load_experiment",
    "save_manifest",
    "load_manifest",
]
