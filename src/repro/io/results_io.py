"""JSON serialisation of simulation results and experiment tables.

Keeps the on-disk schema explicit and versioned so benchmark outputs can be
archived and diffed across code revisions.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path

from repro.exceptions import ParameterError
from repro.experiments.common import ExperimentResult
from repro.obs.manifest import MANIFEST_SCHEMA, RunManifest
from repro.simulation.results import RunSet

__all__ = [
    "CACHE_ENTRY_SCHEMA",
    "save_runset",
    "load_runset",
    "save_experiment",
    "load_experiment",
    "save_manifest",
    "load_manifest",
    "save_cache_entry",
    "load_cache_entry",
    "read_cache_entry_header",
]

_SCHEMA_RUNSET = "repro/runset-v1"
_SCHEMA_EXPERIMENT = "repro/experiment-v1"
_SCHEMA_MANIFEST = MANIFEST_SCHEMA

#: one entry of the :mod:`repro.cache` content-addressed store: a RunSet
#: payload wrapped with its key, label and creation stamp.
CACHE_ENTRY_SCHEMA = "repro/cache-entry-v1"


def save_runset(runs: RunSet, path: str | Path) -> None:
    """Write a :class:`RunSet` to *path* as JSON."""
    payload = {"schema": _SCHEMA_RUNSET, **runs.to_dict()}
    Path(path).write_text(json.dumps(payload))


def load_runset(path: str | Path) -> RunSet:
    """Read a :class:`RunSet` written by :func:`save_runset`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != _SCHEMA_RUNSET:
        raise ParameterError(f"{path} is not a {_SCHEMA_RUNSET} file")
    payload.pop("schema")
    return RunSet.from_dict(payload)


def save_experiment(result: ExperimentResult, path: str | Path) -> None:
    """Write an :class:`ExperimentResult` to *path* as JSON."""
    payload = {"schema": _SCHEMA_EXPERIMENT, **result.to_dict()}
    Path(path).write_text(json.dumps(payload))


def save_manifest(manifest: RunManifest, path: str | Path) -> None:
    """Write a :class:`~repro.obs.RunManifest` to *path* as JSON."""
    payload = {"schema": _SCHEMA_MANIFEST, **manifest.to_dict()}
    Path(path).write_text(json.dumps(payload, indent=2))


def load_manifest(path: str | Path) -> RunManifest:
    """Read a :class:`~repro.obs.RunManifest` written by :func:`save_manifest`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != _SCHEMA_MANIFEST:
        raise ParameterError(f"{path} is not a {_SCHEMA_MANIFEST} file")
    payload.pop("schema")
    return RunManifest.from_dict(payload)


def save_cache_entry(
    key: str, runs: RunSet, path: str | Path, *, label: str = ""
) -> None:
    """Write one :mod:`repro.cache` store entry (RunSet + key header)."""
    payload = {
        "schema": CACHE_ENTRY_SCHEMA,
        "key": key,
        "label": label,
        "n_runs": runs.n_runs,
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "runset": runs.to_dict(),
    }
    Path(path).write_text(json.dumps(payload))


def load_cache_entry(path: str | Path) -> tuple[str, RunSet]:
    """Read a cache entry written by :func:`save_cache_entry`.

    Returns ``(key, runset)``; raises :class:`ParameterError` on schema or
    payload mismatch (the store treats that as a corrupt entry / miss).
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != CACHE_ENTRY_SCHEMA:
        raise ParameterError(f"{path} is not a {CACHE_ENTRY_SCHEMA} file")
    key = payload.get("key")
    if not isinstance(key, str) or not key:
        raise ParameterError(f"{path} has no cache key")
    return key, RunSet.from_dict(payload["runset"])


def read_cache_entry_header(path: str | Path) -> dict:
    """Entry metadata (key, label, n_runs, created_at) without the vectors.

    Parses the whole JSON file but skips RunSet reconstruction — enough for
    ``repro-sim cache ls`` over large stores.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != CACHE_ENTRY_SCHEMA:
        raise ParameterError(f"{path} is not a {CACHE_ENTRY_SCHEMA} file")
    return {k: payload.get(k) for k in ("key", "label", "n_runs", "created_at")}


def load_experiment(path: str | Path) -> ExperimentResult:
    """Read an :class:`ExperimentResult` written by :func:`save_experiment`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != _SCHEMA_EXPERIMENT:
        raise ParameterError(f"{path} is not a {_SCHEMA_EXPERIMENT} file")
    return ExperimentResult(
        name=payload["name"],
        title=payload["title"],
        columns=payload["columns"],
        rows=payload["rows"],
        notes=payload.get("notes", []),
        meta=payload.get("meta", {}),
    )
