"""JSON serialisation of simulation results and experiment tables.

Keeps the on-disk schema explicit and versioned so benchmark outputs can be
archived and diffed across code revisions.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import ParameterError
from repro.experiments.common import ExperimentResult
from repro.obs.manifest import MANIFEST_SCHEMA, RunManifest
from repro.simulation.results import RunSet

__all__ = [
    "save_runset",
    "load_runset",
    "save_experiment",
    "load_experiment",
    "save_manifest",
    "load_manifest",
]

_SCHEMA_RUNSET = "repro/runset-v1"
_SCHEMA_EXPERIMENT = "repro/experiment-v1"
_SCHEMA_MANIFEST = MANIFEST_SCHEMA


def save_runset(runs: RunSet, path: str | Path) -> None:
    """Write a :class:`RunSet` to *path* as JSON."""
    payload = {"schema": _SCHEMA_RUNSET, **runs.to_dict()}
    Path(path).write_text(json.dumps(payload))


def load_runset(path: str | Path) -> RunSet:
    """Read a :class:`RunSet` written by :func:`save_runset`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != _SCHEMA_RUNSET:
        raise ParameterError(f"{path} is not a {_SCHEMA_RUNSET} file")
    payload.pop("schema")
    return RunSet.from_dict(payload)


def save_experiment(result: ExperimentResult, path: str | Path) -> None:
    """Write an :class:`ExperimentResult` to *path* as JSON."""
    payload = {"schema": _SCHEMA_EXPERIMENT, **result.to_dict()}
    Path(path).write_text(json.dumps(payload))


def save_manifest(manifest: RunManifest, path: str | Path) -> None:
    """Write a :class:`~repro.obs.RunManifest` to *path* as JSON."""
    payload = {"schema": _SCHEMA_MANIFEST, **manifest.to_dict()}
    Path(path).write_text(json.dumps(payload, indent=2))


def load_manifest(path: str | Path) -> RunManifest:
    """Read a :class:`~repro.obs.RunManifest` written by :func:`save_manifest`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != _SCHEMA_MANIFEST:
        raise ParameterError(f"{path} is not a {_SCHEMA_MANIFEST} file")
    payload.pop("schema")
    return RunManifest.from_dict(payload)


def load_experiment(path: str | Path) -> ExperimentResult:
    """Read an :class:`ExperimentResult` written by :func:`save_experiment`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != _SCHEMA_EXPERIMENT:
        raise ParameterError(f"{path} is not a {_SCHEMA_EXPERIMENT} file")
    return ExperimentResult(
        name=payload["name"],
        title=payload["title"],
        columns=payload["columns"],
        rows=payload["rows"],
        notes=payload.get("notes", []),
        meta=payload.get("meta", {}),
    )
