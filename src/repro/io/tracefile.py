"""Failure-trace file format (CSV).

A minimal, self-describing on-disk format so traces can be exchanged with
the CLI and with external tools (and so real CFDR logs can be imported by
anyone who has access to them):

.. code-block:: text

    # repro failure trace v1
    # name: LANL#2-like
    # n_nodes: 49
    # duration: 271566000.0
    time_s,node_id
    12.5,3
    890.0,17
    ...

Times are seconds from the start of the observation window, strictly
increasing is not required (ties allowed), node ids are 0-based.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.exceptions import TraceError
from repro.failures.traces import FailureTrace

__all__ = ["write_trace", "read_trace", "trace_to_csv", "trace_from_csv"]

_HEADER = "# repro failure trace v1"


def trace_to_csv(trace: FailureTrace) -> str:
    """Serialise a trace to the CSV text format."""
    buf = io.StringIO()
    buf.write(f"{_HEADER}\n")
    buf.write(f"# name: {trace.name}\n")
    buf.write(f"# n_nodes: {trace.n_nodes}\n")
    buf.write(f"# duration: {float(trace.duration)!r}\n")
    buf.write("time_s,node_id\n")
    for t, n in zip(trace.times, trace.node_ids):
        buf.write(f"{float(t)!r},{int(n)}\n")
    return buf.getvalue()


def trace_from_csv(text: str) -> FailureTrace:
    """Parse the CSV text format back into a :class:`FailureTrace`."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != _HEADER:
        raise TraceError(f"not a repro trace file (missing {_HEADER!r} header)")
    meta: dict[str, str] = {}
    body_start = None
    for i, line in enumerate(lines[1:], start=1):
        stripped = line.strip()
        if stripped.startswith("#"):
            if ":" in stripped:
                key, _, value = stripped.lstrip("# ").partition(":")
                meta[key.strip()] = value.strip()
            continue
        if stripped == "time_s,node_id":
            body_start = i + 1
            break
        raise TraceError(f"unexpected line before column header: {line!r}")
    if body_start is None:
        raise TraceError("missing 'time_s,node_id' column header")
    try:
        n_nodes = int(meta["n_nodes"])
        duration = float(meta["duration"])
    except (KeyError, ValueError) as exc:
        raise TraceError(f"bad or missing trace metadata: {exc}") from exc

    times: list[float] = []
    nodes: list[int] = []
    for line in lines[body_start:]:
        stripped = line.strip()
        if not stripped:
            continue
        try:
            t_str, n_str = stripped.split(",")
            times.append(float(t_str))
            nodes.append(int(n_str))
        except ValueError as exc:
            raise TraceError(f"malformed trace row {line!r}") from exc
    return FailureTrace(
        np.asarray(times),
        np.asarray(nodes, dtype=np.int64),
        n_nodes,
        duration=duration,
        name=meta.get("name", ""),
    )


def write_trace(trace: FailureTrace, path: str | Path) -> None:
    """Write a trace to *path* in the CSV format."""
    Path(path).write_text(trace_to_csv(trace))


def read_trace(path: str | Path) -> FailureTrace:
    """Read a trace from *path*."""
    return trace_from_csv(Path(path).read_text())
