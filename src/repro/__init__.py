"""repro — reproduction of *Replication Is More Efficient Than You Think* (SC'19).

The package provides:

* :mod:`repro.core` — the paper's analytic results: closed-form MTTI with
  replication (Theorem 4.1), the *restart* strategy's optimal checkpointing
  period ``T_opt^rs = (3 C^R / (4 b lambda^2))^(1/3)``, overhead models,
  Amdahl-law time-to-solution, and the Section 6 asymptotics;
* :mod:`repro.failures` — failure-model substrate: distributions, failure
  traces (with the paper's group/rotation rescaling), synthetic LANL-like
  logs and correlation diagnostics;
* :mod:`repro.platform_model` — platform layout and checkpoint cost model;
* :mod:`repro.simulation` — vectorised Monte-Carlo engines for every
  strategy the paper evaluates (restart, no-restart, restart-on-failure,
  non-periodic, n-bound restart, partial/no replication);
* :mod:`repro.experiments` — one driver per paper figure/table;
* :mod:`repro.parallel` — deterministic process-pool execution layer for
  fanning Monte-Carlo replications across cores (``n_jobs=1`` and
  ``n_jobs=8`` give bit-identical results for the same seed), with
  per-chunk fault handling: crashed or hung chunks retry with their
  original seeds, genuine task errors propagate unchanged;
* :mod:`repro.adaptive` — CI-targeted sequential replication: chunked
  dispatch stops per point once the overhead-mean confidence half-width
  reaches a target (``target_ci`` / ``--target-ci`` / ``REPRO_TARGET_CI``),
  with bit-reproducible stopping decisions across backends and worker
  counts;
* :mod:`repro.cache` — content-addressed on-disk result cache keyed by
  task/config/seed/layout provenance, making interrupted sweeps resumable
  (``--cache-dir`` / ``REPRO_CACHE_DIR``);
* :mod:`repro.obs` — structured observability: JSONL tracing (spans,
  events, counters) gated by ``REPRO_TRACE`` / ``--log-json``, plus
  deterministic :class:`~repro.obs.RunManifest` provenance records
  attached to every simulation result;
* :mod:`repro.io` — trace file and result serialisation;
* :mod:`repro.cli` — ``repro-sim`` command-line interface.

Quickstart
----------
>>> import repro
>>> mu = 5 * repro.YEAR          # individual processor MTBF
>>> b = 100_000                  # replicated pairs (N = 200,000)
>>> costs = repro.CheckpointCosts(checkpoint=60.0)
>>> T_rs = repro.restart_period(mu, costs.restart_checkpoint, b)
>>> T_no = repro.no_restart_period(mu, costs.checkpoint, b)
>>> T_rs > 2 * T_no              # the headline: much longer periods
True
"""

from repro.core import (
    AmdahlApplication,
    EnergyBreakdown,
    PowerModel,
    asymptotic_ratio,
    best_gain,
    breakeven_x,
    energy_overhead,
    interruption_cdf,
    interruption_quantile,
    interruption_survival,
    mtti,
    nfail,
    no_replication_overhead,
    no_restart_overhead,
    no_restart_period,
    restart_optimal_overhead,
    restart_overhead,
    restart_period,
    sample_time_to_interruption,
    time_to_solution,
    young_daly_period,
)
from repro.exceptions import (
    ConvergenceError,
    ModelDomainError,
    ParameterError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.failures import (
    Exponential,
    FailureTrace,
    Gamma,
    LogNormal,
    Weibull,
    make_lanl2_like,
    make_lanl18_like,
)
from repro.adaptive import AdaptivePlan, default_target_ci
from repro.cache import RunCache, cache_scope, set_default_cache
from repro.obs import RunManifest, enable_trace, trace_to
from repro.parallel import (
    ExecutionContext,
    parallel_execution,
    set_default_execution,
)
from repro.platform_model import BUDDY_60S, REMOTE_600S, CheckpointCosts, Platform, RackTopology
from repro.simulation import (
    RunSet,
    io_pressure,
    simulate_nbound,
    simulate_no_replication,
    simulate_no_restart,
    simulate_non_periodic,
    simulate_partial_replication,
    simulate_restart,
    simulate_restart_on_failure,
    simulate_with_trace,
)
from repro.util import DAY, HOUR, MINUTE, WEEK, YEAR

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core formulas
    "nfail",
    "mtti",
    "interruption_cdf",
    "interruption_survival",
    "interruption_quantile",
    "sample_time_to_interruption",
    "young_daly_period",
    "no_restart_period",
    "restart_period",
    "restart_overhead",
    "restart_optimal_overhead",
    "no_restart_overhead",
    "no_replication_overhead",
    "AmdahlApplication",
    "time_to_solution",
    "asymptotic_ratio",
    "best_gain",
    "breakeven_x",
    "PowerModel",
    "EnergyBreakdown",
    "energy_overhead",
    # platform
    "Platform",
    "CheckpointCosts",
    "BUDDY_60S",
    "REMOTE_600S",
    "RackTopology",
    # failures
    "FailureTrace",
    "Exponential",
    "Weibull",
    "LogNormal",
    "Gamma",
    "make_lanl2_like",
    "make_lanl18_like",
    # simulation
    "RunSet",
    "simulate_restart",
    "simulate_no_restart",
    "simulate_nbound",
    "simulate_non_periodic",
    "simulate_no_replication",
    "simulate_partial_replication",
    "simulate_restart_on_failure",
    "simulate_with_trace",
    "io_pressure",
    # parallel execution
    "ExecutionContext",
    "parallel_execution",
    "set_default_execution",
    # adaptive sampling
    "AdaptivePlan",
    "default_target_ci",
    # result cache
    "RunCache",
    "cache_scope",
    "set_default_cache",
    # observability
    "RunManifest",
    "enable_trace",
    "trace_to",
    # units
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "YEAR",
    # exceptions
    "ReproError",
    "ParameterError",
    "ModelDomainError",
    "SimulationError",
    "TraceError",
    "ConvergenceError",
]
