"""Adaptive sampling: CI-targeted sequential replication.

Every fixed-budget sweep spends the same ``n_runs`` on every point, so easy
points (tight variance) burn the budget a hard point actually needs.  This
module implements the sequential alternative: chunks are dispatched in
**waves**, completed chunks fold into the streaming accumulator
(:mod:`repro.parallel.streaming`), and dispatch stops for a point as soon
as the overhead-mean confidence-interval half-width
(:func:`repro.util.stats.moments_confidence_halfwidth`) reaches a target.
Budget saved on easy points is available as extra waves — up to a
``max_runs`` cap — on points still above target.

Determinism contract (DESIGN §5i)
---------------------------------
The stopping decision is a **pure function of the folded chunk-index
prefix at fixed wave boundaries**:

* the chunk layout covers the full ``max_runs`` cap up front, so chunk
  sizes and per-chunk seeds never depend on where dispatch stops;
* a wave is a fixed slice of that layout (``wave_size`` chunks), fully
  drained before the rule is evaluated — in-flight chunks are never
  abandoned, undispatched waves are simply never submitted;
* :func:`should_stop` reads only the ordered-fold Welford state, which the
  streaming layer guarantees is a pure function of chunk contents.

Consequently the runs-spent-per-point vector and the final summary are
bit-identical for a given seed across every backend and any ``n_jobs`` —
the same contract fixed-budget dispatch has, proven by the same
conformance suite.

Usage: set ``target_ci=`` (plus optional ``max_runs=`` / ``wave_size=``)
on an :class:`~repro.parallel.ExecutionContext`, pass ``--target-ci`` to
``repro-sim sweep``, or export ``REPRO_TARGET_CI`` to retarget every
dispatch ambiently.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import ParameterError
from repro.util.stats import StreamingMoments, moments_confidence_halfwidth
from repro.util.validation import check_positive, check_positive_int

if TYPE_CHECKING:
    from repro.parallel.context import ExecutionContext

__all__ = [
    "ADAPTIVE_CI_LEVEL",
    "DEFAULT_WAVE_SIZE",
    "TARGET_CI_ENV_VAR",
    "AdaptivePlan",
    "default_target_ci",
    "evaluate_wave",
    "resolve_plan",
    "should_stop",
    "wave_bounds",
]

#: chunks dispatched per wave when :attr:`ExecutionContext.wave_size` is
#: None.  Fixed (never derived from ``n_jobs``) for the same reason the
#: chunk size is: wave boundaries are where stopping is evaluated, so they
#: must be identical for every worker count.
DEFAULT_WAVE_SIZE = 4

#: confidence level of the targeted half-width.  Pinned rather than
#: configurable so a target value means the same thing in every journal,
#: cache key and benchmark artifact.
ADAPTIVE_CI_LEVEL = 0.95

#: environment variable supplying the default ``target_ci`` for any
#: context constructed without an explicit one (mirrors ``REPRO_BACKEND``).
TARGET_CI_ENV_VAR = "REPRO_TARGET_CI"


def default_target_ci() -> float | None:
    """``REPRO_TARGET_CI`` parsed and validated, else ``None`` (off)."""
    raw = os.environ.get(TARGET_CI_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ParameterError(
            f"{TARGET_CI_ENV_VAR} must be a float, got {raw!r}"
        ) from None
    check_positive(TARGET_CI_ENV_VAR, value)
    return value


@dataclass(frozen=True)
class AdaptivePlan:
    """Resolved adaptive-sampling parameters for one chunked batch.

    A plan is a pure function of the execution context and the requested
    ``n_runs`` (:func:`resolve_plan`), so two dispatches of the same
    request always stop at the same wave boundary.
    """

    target_ci: float
    max_runs: int
    wave_size: int
    level: float = ADAPTIVE_CI_LEVEL

    def __post_init__(self) -> None:
        check_positive("target_ci", self.target_ci)
        check_positive_int("max_runs", self.max_runs)
        check_positive_int("wave_size", self.wave_size)
        if not 0.0 < self.level < 1.0:
            raise ParameterError(
                f"confidence level must be in (0, 1), got {self.level}"
            )

    def key_payload(self) -> dict:
        """The plan as folded into chunk cache keys.

        Adaptive chunk entries live in their own key namespace: a run that
        realizes only a prefix of the layout must never cross-serve (or be
        served by) a fixed-budget request, which expects the full layout
        under its keys.
        """
        return {
            "target_ci": self.target_ci,
            "max_runs": self.max_runs,
            "wave_size": self.wave_size,
            "level": self.level,
        }


def resolve_plan(
    context: "ExecutionContext | None", n_runs: int
) -> AdaptivePlan | None:
    """The :class:`AdaptivePlan` for a dispatch, or ``None`` (fixed budget).

    ``max_runs`` defaults to the requested ``n_runs`` — the cap only grows
    the layout when a caller explicitly grants extra budget for hard
    points.
    """
    if context is None or context.target_ci is None:
        return None
    return AdaptivePlan(
        target_ci=context.target_ci,
        max_runs=context.max_runs if context.max_runs is not None else n_runs,
        wave_size=(
            context.wave_size if context.wave_size is not None else DEFAULT_WAVE_SIZE
        ),
    )


def wave_bounds(n_chunks: int, wave_size: int) -> list[tuple[int, int]]:
    """Fixed wave boundaries over a chunk layout: ``[(0, w), (w, 2w), ...]``.

    A pure function of ``(n_chunks, wave_size)`` — the dispatch loop and
    any offline replay (tests, journal audits) therefore agree on exactly
    where stopping decisions happen.
    """
    check_positive_int("n_chunks", n_chunks)
    check_positive_int("wave_size", wave_size)
    return [
        (start, min(start + wave_size, n_chunks))
        for start in range(0, n_chunks, wave_size)
    ]


def should_stop(
    moments: StreamingMoments, target_ci: float, *, level: float = ADAPTIVE_CI_LEVEL
) -> bool:
    """Has the folded prefix pinned the overhead mean tightly enough?

    True once the CI half-width is at or below *target_ci*.  With fewer
    than two observations the half-width is degenerately zero, so the rule
    never stops before real evidence exists.
    """
    if moments.count < 2:
        return False
    return moments_confidence_halfwidth(moments, level=level) <= target_ci


def evaluate_wave(
    moments: StreamingMoments, plan: AdaptivePlan
) -> tuple[bool, float]:
    """One wave-boundary decision: ``(stop, halfwidth)``.

    Exactly :func:`should_stop` plus the half-width it was judged against,
    computed once — the dispatch loop journals/traces the half-width and
    feeds it to the live progress tracker, so evaluating it separately
    would double the (scipy-backed) computation and risk divergence.
    Bit-identical to ``should_stop(moments, plan.target_ci, level=...)``:
    below two observations the half-width is degenerately zero and the
    rule never stops.
    """
    halfwidth = moments_confidence_halfwidth(moments, level=plan.level)
    return (moments.count >= 2 and halfwidth <= plan.target_ci), halfwidth
