"""Live dispatch/sweep/fleet progress: the state behind ``/progress``.

:mod:`repro.obs.trace` records what *happened*; this module tracks what is
happening **right now**.  A process-wide, thread-safe
:class:`ProgressTracker` is fed by the layers that own the facts:

* :func:`repro.parallel.run_chunked` — dispatch start/end, chunk
  dispatched/done/retried (including cache-served chunks), adaptive wave
  decisions;
* :mod:`repro.sweep` — sweep and point boundaries;
* the tcp backend (:mod:`repro.parallel.backends.tcp`) — worker
  connect/heartbeat/complete/disconnect, keyed by the stable
  ``host:pid`` worker id from the hello handshake.

The tracker follows the always-on discipline of
:mod:`repro.obs.metrics`: every update is a dict mutation behind one lock
at chunk granularity (never per-iteration), so feeding it costs nothing
measurable and requires no opt-in.  It owns **no threads and no sockets**
— serving the state over HTTP is :mod:`repro.obs.server`'s job, and that
server only exists when a telemetry port is configured.

Invariants (DESIGN §5j):

* per dispatch, ``chunks_done`` and ``retries`` are monotonic and
  ``in_flight`` only ever contains chunks that were dispatched and are
  neither done nor failed — so ``done + len(in_flight) <= total`` always;
* :meth:`ProgressTracker.snapshot` is a consistent copy taken under the
  lock: a scrape never observes a half-applied update and never mutates
  tracker state;
* a finished dispatch/sweep stays visible (``active: false``) until the
  next one starts, so a scrape that lands between points still renders.
"""

from __future__ import annotations

import os
import threading
import time
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "PROGRESS_SCHEMA",
    "WORKERS_SCHEMA",
    "ProgressTracker",
    "get_tracker",
]

#: schema identifier stamped on ``/progress`` payloads.
PROGRESS_SCHEMA = "repro/progress-v1"

#: schema identifier stamped on ``/workers`` payloads.
WORKERS_SCHEMA = "repro/workers-v1"


class ProgressTracker:
    """Thread-safe live view of the current sweep / dispatch / worker fleet.

    All mutators are cheap (dict updates under one lock) and never raise on
    out-of-order or unknown-entity calls: progress tracking must not be
    able to take a run down, so a ``chunk_done`` for an unknown dispatch or
    a heartbeat from a never-announced worker is simply recorded as best as
    possible (or dropped), never an error.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_mono = time.monotonic()
        self._sweep: dict[str, Any] | None = None
        self._dispatch: dict[str, Any] | None = None
        self._workers: dict[str, dict[str, Any]] = {}

    # -- dispatch ------------------------------------------------------
    def dispatch_start(
        self,
        *,
        n_chunks: int,
        n_runs: int,
        backend: str,
        n_jobs: int,
        adaptive: bool = False,
        n_waves: int | None = None,
        target_ci: float | None = None,
    ) -> None:
        """A ``run_chunked`` dispatch laid out *n_chunks* over *n_runs*."""
        with self._lock:
            self._dispatch = {
                "backend": backend,
                "n_jobs": n_jobs,
                "total_chunks": n_chunks,
                "runs_total": n_runs,
                "chunks_done": 0,
                "cache_hits": 0,
                "retries": 0,
                "runs_done": 0,
                "in_flight": set(),
                "adaptive": bool(adaptive),
                "n_waves": n_waves,
                "wave": 0,
                "halfwidth": None,
                "target_ci": target_ci,
                "started_mono": time.monotonic(),
                "active": True,
            }

    def chunk_dispatched(self, index: int, worker: str | None = None) -> None:
        """Chunk *index* was handed to an executor (possibly a retry)."""
        with self._lock:
            d = self._dispatch
            if d is not None and d["active"]:
                d["in_flight"].add(index)
            if worker is not None:
                entry = self._workers.get(worker)
                if entry is not None:
                    entry["in_flight"] = index

    def chunk_done(self, index: int, *, size: int = 0, source: str = "run") -> None:
        """Chunk *index* was harvested (*source*: ``"run"`` or ``"cache"``)."""
        with self._lock:
            d = self._dispatch
            if d is None or not d["active"]:
                return
            d["chunks_done"] += 1
            d["runs_done"] += int(size)
            if source == "cache":
                d["cache_hits"] += 1
            d["in_flight"].discard(index)

    def chunk_failed(self, index: int, worker: str | None = None, *,
                     requeued: bool = True) -> None:
        """A chunk attempt failed; *requeued* means it will be retried."""
        with self._lock:
            d = self._dispatch
            if d is not None and d["active"]:
                d["in_flight"].discard(index)
                if requeued:
                    d["retries"] += 1
            if worker is not None:
                entry = self._workers.get(worker)
                if entry is not None and entry.get("in_flight") == index:
                    entry["in_flight"] = None

    def wave_done(
        self, wave: int, *, halfwidth: float | None = None, stopped: bool = False
    ) -> None:
        """Adaptive wave *wave* (1-based) drained and was evaluated."""
        with self._lock:
            d = self._dispatch
            if d is None or not d["active"]:
                return
            d["wave"] = int(wave)
            if halfwidth is not None:
                d["halfwidth"] = float(halfwidth)
            if stopped:
                d["stopped"] = True

    def dispatch_end(self) -> None:
        """The dispatch finished; its last state stays visible (inactive)."""
        with self._lock:
            if self._dispatch is not None:
                self._dispatch["active"] = False
                self._dispatch["in_flight"] = set()

    # -- sweep ---------------------------------------------------------
    def sweep_start(self, *, label: str, n_points: int) -> None:
        with self._lock:
            self._sweep = {
                "label": label,
                "n_points": int(n_points),
                "points_done": 0,
                "point": None,
                "point_labels": {},
                "started_mono": time.monotonic(),
                "active": True,
            }

    def point_start(self, index: int, **labels: Any) -> None:
        with self._lock:
            s = self._sweep
            if s is not None and s["active"]:
                s["point"] = int(index)
                s["point_labels"] = dict(labels)

    def point_done(self, index: int) -> None:
        with self._lock:
            s = self._sweep
            if s is not None and s["active"]:
                s["points_done"] += 1

    def sweep_end(self) -> None:
        with self._lock:
            if self._sweep is not None:
                self._sweep["active"] = False

    # -- worker fleet (tcp backend) ------------------------------------
    def worker_connected(self, worker_id: str) -> None:
        """A worker completed the hello handshake.  Reconnects keep the
        completed-chunk tally (the id is stable across reconnects)."""
        now = time.monotonic()
        with self._lock:
            entry = self._workers.get(worker_id)
            if entry is None:
                entry = self._workers[worker_id] = {
                    "chunks_completed": 0,
                    "disconnects": 0,
                    "first_connected_mono": now,
                }
            entry.update(
                connected=True, connected_mono=now, last_heartbeat_mono=now,
                in_flight=None,
            )

    def worker_heartbeat(self, worker_id: str) -> None:
        with self._lock:
            entry = self._workers.get(worker_id)
            if entry is not None:
                entry["last_heartbeat_mono"] = time.monotonic()

    def worker_chunk_done(self, worker_id: str) -> None:
        with self._lock:
            entry = self._workers.get(worker_id)
            if entry is not None:
                entry["chunks_completed"] += 1
                entry["in_flight"] = None
                entry["last_heartbeat_mono"] = time.monotonic()

    def worker_disconnected(self, worker_id: str) -> None:
        with self._lock:
            entry = self._workers.get(worker_id)
            if entry is not None:
                entry["connected"] = False
                entry["disconnects"] += 1
                entry["in_flight"] = None

    # -- read side -----------------------------------------------------
    def snapshot(self) -> dict:
        """The ``/progress`` payload: a consistent, JSON-safe copy."""
        now = time.monotonic()
        with self._lock:
            sweep = dict(self._sweep) if self._sweep is not None else None
            dispatch = dict(self._dispatch) if self._dispatch is not None else None
            if dispatch is not None:
                dispatch["in_flight"] = sorted(dispatch["in_flight"])
        out: dict[str, Any] = {
            "schema": PROGRESS_SCHEMA,
            "ts": time.time(),
            "pid": os.getpid(),
            "uptime_s": round(now - self._started_mono, 3),
            "sweep": None,
            "dispatch": None,
        }
        if sweep is not None:
            elapsed = now - sweep.pop("started_mono")
            done = sweep["points_done"]
            remaining = max(0, sweep["n_points"] - done)
            eta = elapsed / done * remaining if sweep["active"] and done else None
            sweep["elapsed_s"] = round(elapsed, 3)
            sweep["eta_s"] = round(eta, 3) if eta is not None else None
            out["sweep"] = sweep
        if dispatch is not None:
            elapsed = now - dispatch.pop("started_mono")
            done = dispatch["chunks_done"]
            rate = done / elapsed if elapsed > 0 else 0.0
            remaining = max(0, dispatch["total_chunks"] - done)
            eta = remaining / rate if dispatch["active"] and rate > 0 else None
            dispatch["elapsed_s"] = round(elapsed, 3)
            dispatch["rate_chunks_per_s"] = round(rate, 3)
            dispatch["eta_s"] = round(eta, 3) if eta is not None else None
            out["dispatch"] = dispatch
        return out

    def workers_snapshot(self) -> dict:
        """The ``/workers`` payload: per-worker fleet health."""
        now = time.monotonic()
        with self._lock:
            rows = []
            for worker_id in sorted(self._workers):
                entry = self._workers[worker_id]
                age = now - entry.get("last_heartbeat_mono", now)
                lifetime = now - entry.get("first_connected_mono", now)
                completed = entry["chunks_completed"]
                rows.append({
                    "id": worker_id,
                    "connected": bool(entry.get("connected")),
                    "heartbeat_age_s": round(age, 3),
                    "in_flight": entry.get("in_flight"),
                    "chunks_completed": completed,
                    "throughput_chunks_per_s": (
                        round(completed / lifetime, 3) if lifetime > 0 else 0.0
                    ),
                    "disconnects": entry["disconnects"],
                })
        return {"schema": WORKERS_SCHEMA, "ts": time.time(), "workers": rows}

    def refresh_worker_gauges(self, registry: "MetricsRegistry | None" = None) -> None:
        """Publish per-worker heartbeat ages as labelled gauges.

        Called at scrape time (``GET /metrics``) rather than on every
        heartbeat: the gauge is only meaningful at the instant it is read,
        and scrape-time refresh keeps the heartbeat path allocation-free.
        """
        if registry is None:
            from repro.obs import metrics as obs_metrics

            registry = obs_metrics.get_registry()
        now = time.monotonic()
        with self._lock:
            ages = {
                worker_id: now - entry.get("last_heartbeat_mono", now)
                for worker_id, entry in self._workers.items()
                if entry.get("connected")
            }
        for worker_id, age in ages.items():
            registry.set_gauge(
                "parallel.worker_heartbeat_age", round(age, 3), worker=worker_id
            )

    def reset(self) -> None:
        """Forget everything (tests, or between CLI invocations)."""
        with self._lock:
            self._sweep = None
            self._dispatch = None
            self._workers.clear()


# ---------------------------------------------------------------------------
# Process-wide singleton
# ---------------------------------------------------------------------------

_tracker = ProgressTracker()


def get_tracker() -> ProgressTracker:
    """The process-wide tracker every producer and the HTTP server share."""
    return _tracker
