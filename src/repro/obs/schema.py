"""Validation of emitted trace records against the checked-in event schema.

The schema lives next to this module as ``event_schema.json`` so that the
contract is reviewable (and diffable) as data rather than buried in code.
The validator implements exactly the JSON-Schema subset the file uses —
``type`` / ``enum`` / ``const`` / ``required`` / ``additionalProperties`` —
plus the kind-conditional requirements (``span_end`` carries ``wall_s``,
``counter`` carries ``value``, and v2 ``span_start``/``span_end`` lines
carry a ``span_id``), so no third-party dependency is needed.  Both
schema versions validate: v1 lines simply carry no span ids.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.exceptions import ParameterError

__all__ = ["EVENT_SCHEMA_PATH", "load_event_schema", "validate_event"]

EVENT_SCHEMA_PATH = Path(__file__).with_name("event_schema.json")

_schema_cache: dict | None = None

#: JSON-Schema scalar type name -> accepted Python types.  ``bool`` is a
#: subclass of ``int`` in Python, so numeric checks must exclude it.
_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
}


def load_event_schema() -> dict:
    """The checked-in event schema (``event_schema.json``), cached."""
    global _schema_cache
    if _schema_cache is None:
        _schema_cache = json.loads(EVENT_SCHEMA_PATH.read_text(encoding="utf-8"))
    return _schema_cache


def _check_value(key: str, value: Any, spec: dict) -> None:
    if "const" in spec and value != spec["const"]:
        raise ParameterError(f"trace event field {key!r}: expected {spec['const']!r}, got {value!r}")
    if "enum" in spec and value not in spec["enum"]:
        raise ParameterError(
            f"trace event field {key!r}: {value!r} not in {spec['enum']}"
        )
    expected = spec.get("type")
    if expected is not None and not _TYPE_CHECKS[expected](value):
        raise ParameterError(
            f"trace event field {key!r}: expected JSON type {expected!r}, "
            f"got {type(value).__name__}"
        )


def validate_event(record: Any) -> dict:
    """Validate one parsed JSONL record; return it unchanged.

    Raises :class:`~repro.exceptions.ParameterError` describing the first
    violation found (missing field, unknown field, wrong type, bad enum
    value, or a kind-specific field missing).
    """
    schema = load_event_schema()
    if not isinstance(record, dict):
        raise ParameterError(f"trace event must be a JSON object, got {type(record).__name__}")
    missing = [key for key in schema["required"] if key not in record]
    if missing:
        raise ParameterError(f"trace event is missing required field(s): {', '.join(missing)}")
    properties = schema["properties"]
    if schema.get("additionalProperties") is False:
        unknown = [key for key in record if key not in properties]
        if unknown:
            raise ParameterError(f"trace event has unknown field(s): {', '.join(unknown)}")
    for key, value in record.items():
        _check_value(key, value, properties[key])
    kind = record["kind"]
    if kind == "span_end" and "wall_s" not in record:
        raise ParameterError("span_end trace event is missing 'wall_s'")
    if kind == "counter" and "value" not in record:
        raise ParameterError("counter trace event is missing 'value'")
    if (
        record["schema"] == "repro/obs-event-v2"
        and kind in ("span_start", "span_end")
        and "span_id" not in record
    ):
        raise ParameterError(f"v2 {kind} trace event is missing 'span_id'")
    return record
