"""A minimal Prometheus text-exposition parser/validator.

The repo *emits* exposition text (:func:`repro.obs.metrics.to_prometheus`)
but until now nothing checked in could *read* it back — so the CI bench
gate could only assert "the scrape returned bytes".  This module is the
counterpart: a dependency-free parser for the subset of the text format
(0.0.4) the registry produces, used by the telemetry CI probe
(``benchmarks/telemetry_probe.py``) and the test suite to validate a live
``GET /metrics`` payload structurally:

* ``# HELP`` / ``# TYPE`` comment lines attach to the named family, and a
  family's samples must follow its ``# TYPE`` line;
* every sample line is ``name{labels} value`` with a float-parseable
  value and balanced, well-formed label braces;
* histogram families must expose ``_bucket`` series with non-decreasing
  cumulative counts per label set, ending in a ``le="+Inf"`` bucket whose
  count equals the family's ``_count`` sample.

:func:`parse_prometheus` raises :class:`~repro.exceptions.ParameterError`
naming the offending line; :func:`validate_exposition` is the one-call
wrapper the probe uses.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.exceptions import ParameterError

__all__ = ["MetricFamily", "Sample", "parse_prometheus", "validate_exposition"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


@dataclass(frozen=True)
class Sample:
    """One sample line: series name, parsed labels, float value."""

    name: str
    labels: dict[str, str]
    value: float


@dataclass
class MetricFamily:
    """One metric family: its declared type, help text and samples."""

    name: str
    type: str | None = None
    help: str | None = None
    samples: list[Sample] = field(default_factory=list)


def _parse_labels(raw: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos, length = 0, len(raw)
    while pos < length:
        match = _LABEL_RE.match(raw, pos)
        if match is None:
            raise ParameterError(
                f"line {lineno}: malformed label pair at {raw[pos:]!r}"
            )
        labels[match.group(1)] = (
            match.group(2).replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
        )
        pos = match.end()
        if pos < length:
            if raw[pos] != ",":
                raise ParameterError(
                    f"line {lineno}: expected ',' between labels, got {raw[pos]!r}"
                )
            pos += 1
    return labels


def _family_of(sample_name: str, families: dict[str, MetricFamily]) -> str:
    """Map a sample series to its family (``_bucket``/``_sum``/``_count``
    collapse onto the histogram family that declared them)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if families.get(base) is not None and families[base].type == "histogram":
                return base
    return sample_name


def parse_prometheus(text: str) -> dict[str, MetricFamily]:
    """Parse exposition *text* into ``{family name: MetricFamily}``.

    Raises :class:`~repro.exceptions.ParameterError` (with the 1-based
    line number) on anything structurally invalid.  An empty exposition is
    valid and returns an empty dict.
    """
    families: dict[str, MetricFamily] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: legal, ignored
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ParameterError(
                    f"line {lineno}: invalid metric name {name!r} in {parts[1]} line"
                )
            family = families.setdefault(name, MetricFamily(name))
            if parts[1] == "HELP":
                family.help = parts[3] if len(parts) > 3 else ""
            else:
                if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ParameterError(
                        f"line {lineno}: invalid TYPE line {line!r}"
                    )
                if family.samples:
                    raise ParameterError(
                        f"line {lineno}: TYPE for {name!r} after its samples"
                    )
                family.type = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ParameterError(f"line {lineno}: unparseable sample {line!r}")
        labels_raw = match.group("labels")
        labels = _parse_labels(labels_raw, lineno) if labels_raw else {}
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ParameterError(
                f"line {lineno}: unparseable value {match.group('value')!r}"
            ) from None
        sample = Sample(match.group("name"), labels, value)
        family = families.setdefault(
            _family_of(sample.name, families), MetricFamily(sample.name)
        )
        family.samples.append(sample)
    return families


def _check_histogram(family: MetricFamily) -> None:
    """Cumulative buckets non-decreasing, ``+Inf`` present and == _count."""
    by_labelset: dict[tuple, list[Sample]] = {}
    counts: dict[tuple, float] = {}
    for sample in family.samples:
        base = tuple(
            sorted((k, v) for k, v in sample.labels.items() if k != "le")
        )
        if sample.name.endswith("_bucket"):
            by_labelset.setdefault(base, []).append(sample)
        elif sample.name.endswith("_count"):
            counts[base] = sample.value
    for base, buckets in by_labelset.items():
        previous = -math.inf
        inf_count = None
        for sample in buckets:  # emission order == ascending le order
            if sample.value < previous:
                raise ParameterError(
                    f"{family.name}: cumulative bucket counts decrease at "
                    f"le={sample.labels.get('le')!r}"
                )
            previous = sample.value
            if sample.labels.get("le") == "+Inf":
                inf_count = sample.value
        if inf_count is None:
            raise ParameterError(
                f"{family.name}: histogram lacks a le=\"+Inf\" bucket"
            )
        if base in counts and inf_count != counts[base]:
            raise ParameterError(
                f"{family.name}: +Inf bucket ({inf_count:g}) != _count "
                f"({counts[base]:g})"
            )


def validate_exposition(
    text: str, *, require_families: tuple[str, ...] = ()
) -> dict[str, MetricFamily]:
    """Parse and structurally validate an exposition payload.

    Beyond :func:`parse_prometheus`: every sampled family must carry a
    ``# TYPE`` declaration, histogram families must pass the cumulative /
    ``+Inf`` checks, and every name in *require_families* must be present.
    Returns the parsed families.
    """
    families = parse_prometheus(text)
    for family in families.values():
        if family.samples and family.type is None:
            raise ParameterError(
                f"{family.name}: samples without a # TYPE declaration"
            )
        if family.type == "histogram":
            _check_histogram(family)
    missing = [name for name in require_families if name not in families]
    if missing:
        raise ParameterError(
            f"exposition is missing required families: {', '.join(missing)}"
        )
    return families
