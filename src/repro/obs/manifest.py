"""Deterministic run manifests: provenance records for simulation results.

A :class:`RunManifest` captures everything needed to re-run and to audit a
batch of Monte-Carlo replications: the seed entropy actually consumed (even
when the caller passed ``seed=None``), a JSON-safe configuration summary,
the execution layout (engine / backend / chunking), per-stage wall-clock
timings, the package version and the host.

Manifests are attached to every :class:`~repro.simulation.results.RunSet`
under ``meta["manifest"]`` — by the engines on the legacy single-batch
path, and (re)written by :func:`repro.parallel.run_chunked` with the chunk
layout and dispatch/merge timings on the chunked path.  They serialise via
:func:`repro.io.save_manifest` and pretty-print via ``repro-sim obs
manifest``.

Everything recorded is either deterministic given the inputs (seed, config,
layout) or explicitly volatile and labelled as such (timings, timestamps,
host) — consumers diffing manifests across runs should compare the former
and read the latter.
"""

from __future__ import annotations

import platform as _platform
import os
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any

from repro.exceptions import ParameterError

__all__ = [
    "MANIFEST_SCHEMA",
    "RunManifest",
    "host_info",
    "seed_provenance",
]

MANIFEST_SCHEMA = "repro/manifest-v1"

_host_cache: dict | None = None


def host_info() -> dict:
    """Static facts about the executing host (cached after the first call)."""
    global _host_cache
    if _host_cache is None:
        _host_cache = {
            "platform": _platform.platform(),
            "python": f"{_platform.python_implementation()} {_platform.python_version()}",
            "machine": _platform.machine(),
            "cpu_count": os.cpu_count() or 1,
            "node": _platform.node(),
        }
    return dict(_host_cache)


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports the simulation stack, which
    # imports this module — a top-level import would be circular.
    repro = sys.modules.get("repro")
    return getattr(repro, "__version__", "unknown")


def seed_provenance(seed: Any) -> dict:
    """JSON-safe record of the entropy a ``SeedLike`` actually resolves to.

    For a :class:`numpy.random.Generator` this digs out the underlying
    :class:`~numpy.random.SeedSequence`, so even ``seed=None`` runs (fresh
    OS entropy) are reproducible from their manifest.
    """
    from repro.util.rng import as_seed_sequence

    try:
        ss = as_seed_sequence(seed)
    except Exception:
        return {"entropy": None, "spawn_key": []}
    entropy = ss.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = [int(e) for e in entropy]
    elif entropy is not None:
        entropy = int(entropy)
    return {"entropy": entropy, "spawn_key": [int(k) for k in ss.spawn_key]}


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass
class RunManifest:
    """Provenance record of one simulation batch (see module docstring).

    Attributes
    ----------
    label:
        The result's strategy/configuration tag.
    seed:
        Output of :func:`seed_provenance` — entropy + spawn key.
    config:
        JSON-safe summary of the simulated configuration (engine parameters
        or chunk-task descriptor).
    execution:
        Layout: engine name, backend, worker count, chunk layout.
    timings:
        Per-stage wall-clock seconds (``total_s`` at minimum).
    """

    label: str = ""
    seed: dict[str, Any] = field(default_factory=dict)
    config: dict[str, Any] = field(default_factory=dict)
    execution: dict[str, Any] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    created_at: str = field(default_factory=_utc_now)
    package_version: str = field(default_factory=_package_version)
    host: dict[str, Any] = field(default_factory=host_info)

    _FIELDS = (
        "label", "seed", "config", "execution", "timings",
        "created_at", "package_version", "host",
    )

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        missing = [name for name in cls._FIELDS if name not in data]
        if missing:
            raise ParameterError(
                f"run manifest payload is missing field(s): {', '.join(missing)}"
            )
        return cls(**{name: data[name] for name in cls._FIELDS})

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human rendering (``repro-sim obs manifest``)."""
        host = self.host or {}
        seed = self.seed or {}
        spawn_key = tuple(seed.get("spawn_key", ()))
        lines = [
            f"run manifest (repro {self.package_version})",
            f"  label      : {self.label or '-'}",
            f"  created    : {self.created_at}",
            f"  host       : {host.get('platform', '?')} · {host.get('python', '?')} · "
            f"{host.get('cpu_count', '?')} CPUs",
            f"  seed       : entropy={seed.get('entropy')}"
            + (f" spawn_key={spawn_key}" if spawn_key else ""),
            "  execution  : " + _kv_line(self.execution),
            "  config     : " + _kv_line(self.config),
            "  timings    : " + " | ".join(
                f"{name} {value:.4f}s" for name, value in sorted(self.timings.items())
            ),
        ]
        return "\n".join(lines)


def _kv_line(mapping: dict[str, Any]) -> str:
    if not mapping:
        return "-"
    return " ".join(f"{key}={_short(value)}" for key, value in sorted(mapping.items()))


def _short(value: Any) -> str:
    text = f"{value:g}" if isinstance(value, float) else str(value)
    return text if len(text) <= 48 else text[:45] + "..."
