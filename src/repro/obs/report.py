"""Trace analytics: turn a JSONL trace into answers about a run.

:mod:`repro.obs.trace` records *events*; this module makes them
*measurements*.  :func:`analyze_trace` pairs ``span_start``/``span_end``
lines into completed spans — by ``span_id`` for schema-v2 traces, falling
back to per-``(pid, name)`` LIFO matching for v1 lines, where concurrent
same-name spans from one process remain ambiguous — and computes:

* wall-clock breakdown per span name (count / total / mean / min / max);
* the per-chunk timeline of a :func:`repro.parallel.run_chunked` dispatch,
  rendered as an ASCII Gantt chart (one bar per chunk, grouped under the
  parent ``parallel.dispatch`` span via ``parent_id``);
* the chunk-latency histogram over the fixed log buckets of
  :mod:`repro.obs.metrics`, so trace-derived and metrics-derived
  histograms are directly comparable;
* parallel efficiency — Σ chunk wall / (elapsed × n_jobs), the measured
  counterpart of the restart-efficiency ratios the paper's simulation
  study sweeps — plus retry / fallback / chunk-failure counts and the
  cache hit rate;
* straggler and critical-path analytics — per-worker utilization (chunks,
  busy time and busy/elapsed per executing pid), chunks flagged at more
  than ``straggler_k`` × the median chunk latency, and the dispatch
  critical path (the slowest single chunk, which bounds achievable
  dispatch time at any worker count).

``repro-sim obs report trace.jsonl`` prints the rendered report; the same
data is available programmatically as a :class:`TraceReport`.

This module only *reads* traces — it never emits — so importing it from
the CLI costs nothing on the hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import ParameterError
from repro.obs import metrics as _metrics
from repro.util.ascii_chart import ascii_gantt, ascii_histogram

__all__ = ["Span", "TraceReport", "analyze_trace", "render_report"]

#: cap on Gantt rows so a 10k-chunk sweep still renders; the report names
#: how many rows were dropped (never a silent truncation).
MAX_GANTT_ROWS = 64


@dataclass(frozen=True)
class Span:
    """One completed span, reconstructed from its start/end pair."""

    name: str
    pid: int
    start_mono: float
    wall_s: float
    span_id: str | None = None
    parent_id: str | None = None
    labels: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end_mono(self) -> float:
        return self.start_mono + self.wall_s


@dataclass
class TraceReport:
    """Everything :func:`analyze_trace` measured about one trace file."""

    n_records: int
    spans: list[Span]
    unmatched_spans: int
    span_stats: dict[str, dict[str, float]]
    chunks: list[Span]
    n_jobs: int
    busy_s: float
    elapsed_s: float
    efficiency: float | None
    retry_rounds: int
    retried_chunks: int
    fallbacks: int
    chunk_failures: dict[str, int]
    cache: dict[str, float]
    counters: dict[str, float]
    chaos_injections: dict[str, int] = field(default_factory=dict)
    poison_chunks: int = 0
    adaptive_stops: int = 0
    adaptive_chunks_saved: int = 0
    adaptive_points_capped: int = 0
    worker_stats: list[dict] = field(default_factory=list)
    stragglers: list[dict] = field(default_factory=list)
    straggler_threshold: float = 2.0
    median_chunk_s: float = 0.0
    critical_path_s: float = 0.0

    def chunk_latency_histogram(self) -> list[tuple[str, int]]:
        """Chunk wall times over the fixed metrics buckets, trimmed to the
        occupied range (empty interior buckets are kept for shape)."""
        bounds = _metrics.BUCKET_BOUNDS
        counts = [0] * (len(bounds) + 1)
        from bisect import bisect_left

        for chunk in self.chunks:
            counts[bisect_left(bounds, chunk.wall_s)] += 1
        occupied = [i for i, c in enumerate(counts) if c]
        if not occupied:
            return []
        lo, hi = occupied[0], occupied[-1]
        return [
            (_metrics.bucket_label(i), counts[i]) for i in range(lo, hi + 1)
        ]


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


def _pair_spans(records: Sequence[dict]) -> tuple[list[Span], int]:
    """Match ``span_start``/``span_end`` lines into completed spans.

    v2 lines pair by ``span_id`` — exact even when a fork-started pool
    interleaves identically named spans.  v1 lines pair LIFO within
    ``(pid, name)``, which is correct for the single-threaded emitters v1
    ever had.  Returns the spans (in end order) and how many starts never
    found their end (killed workers, torn traces).
    """
    by_id: dict[str, dict] = {}
    stacks: dict[tuple[int, str], list[dict]] = {}
    spans: list[Span] = []
    for rec in records:
        kind = rec.get("kind")
        if kind == "span_start":
            span_id = rec.get("span_id")
            if span_id is not None:
                by_id[span_id] = rec
            else:
                stacks.setdefault((rec.get("pid", -1), rec.get("name", "?")), []).append(rec)
        elif kind == "span_end":
            span_id = rec.get("span_id")
            if span_id is not None:
                start = by_id.pop(span_id, None)
            else:
                stack = stacks.get((rec.get("pid", -1), rec.get("name", "?")))
                start = stack.pop() if stack else None
            if start is None:
                continue  # end without start: truncated head of a trace
            wall = float(rec.get("wall_s", 0.0))
            spans.append(
                Span(
                    name=str(rec.get("name", "?")),
                    pid=int(rec.get("pid", -1)),
                    start_mono=float(start.get("mono", rec.get("mono", 0.0) - wall)),
                    wall_s=wall,
                    span_id=span_id,
                    parent_id=rec.get("parent_id"),
                    labels=dict(rec.get("labels") or {}),
                )
            )
    unmatched = len(by_id) + sum(len(stack) for stack in stacks.values())
    return spans, unmatched


def _span_stats(spans: Iterable[Span]) -> dict[str, dict[str, float]]:
    stats: dict[str, dict[str, float]] = {}
    for sp in spans:
        entry = stats.setdefault(
            sp.name,
            {"count": 0, "total_s": 0.0, "min_s": float("inf"), "max_s": 0.0},
        )
        entry["count"] += 1
        entry["total_s"] += sp.wall_s
        entry["min_s"] = min(entry["min_s"], sp.wall_s)
        entry["max_s"] = max(entry["max_s"], sp.wall_s)
    for entry in stats.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return stats


def analyze_trace(
    source: str | Path | Sequence[dict],
    *,
    n_jobs: int | None = None,
    straggler_k: float = 2.0,
) -> TraceReport:
    """Analyze a trace file (or pre-parsed records) into a :class:`TraceReport`.

    *n_jobs* overrides the worker count used for the parallel-efficiency
    denominator; by default it is taken from the ``n_jobs`` label on
    dispatch/chunk spans, falling back to the number of distinct worker
    pids observed.  *straggler_k* sets the straggler flagging threshold:
    chunks slower than ``straggler_k`` × the median chunk wall time.
    """
    if not straggler_k > 0:
        raise ParameterError(f"straggler_k must be positive, got {straggler_k}")
    if isinstance(source, (str, Path)):
        from repro.obs.trace import read_events

        records = read_events(source)
    else:
        records = list(source)
    spans, unmatched = _pair_spans(records)

    chunks = sorted(
        (sp for sp in spans if sp.name == "parallel.chunk"),
        key=lambda sp: (sp.start_mono, sp.labels.get("chunk", 0)),
    )
    dispatches = [sp for sp in spans if sp.name == "parallel.dispatch"]

    busy = sum(sp.wall_s for sp in chunks)
    if dispatches:
        elapsed = sum(sp.wall_s for sp in dispatches)
    elif chunks:
        elapsed = max(sp.end_mono for sp in chunks) - min(sp.start_mono for sp in chunks)
    else:
        elapsed = 0.0

    if n_jobs is None:
        labelled = [
            int(sp.labels["n_jobs"])
            for sp in chunks + dispatches
            if "n_jobs" in sp.labels
        ]
        if labelled:
            n_jobs = max(labelled)
        else:
            worker_pids = {
                sp.pid for sp in chunks if sp.labels.get("backend") == "process"
            }
            n_jobs = max(len(worker_pids), 1)
    efficiency = busy / (elapsed * n_jobs) if chunks and elapsed > 0 else None

    retries = [r for r in records if r.get("name") == "parallel.retry"]
    retried_chunks = sum(
        len((r.get("labels") or {}).get("chunks", [])) for r in retries
    )
    fallbacks = sum(1 for r in records if r.get("name") == "parallel.fallback")
    chunk_failures: dict[str, int] = {}
    chaos_injections: dict[str, int] = {}
    poison_chunks = 0
    adaptive_stops = 0
    adaptive_chunks_saved = 0
    adaptive_points_capped = 0
    for rec in records:
        name = rec.get("name")
        if name == "parallel.chunk_failed":
            kind = str((rec.get("labels") or {}).get("kind", "unknown"))
            chunk_failures[kind] = chunk_failures.get(kind, 0) + 1
        elif name == "chaos.inject":
            action = str((rec.get("labels") or {}).get("action", "?"))
            chaos_injections[action] = chaos_injections.get(action, 0) + 1
        elif name == "parallel.poison_chunk":
            poison_chunks += 1
        elif name == "adaptive.stop":
            labels = rec.get("labels") or {}
            adaptive_stops += 1
            adaptive_chunks_saved += int(labels.get("chunks_saved", 0))
            if not labels.get("reached_target", True):
                adaptive_points_capped += 1

    cache_counts = {
        short: sum(1 for r in records if r.get("name") == f"cache.{short}")
        for short in ("hit", "miss", "store", "corrupt")
    }
    lookups = cache_counts["hit"] + cache_counts["miss"]
    cache = {
        "hits": cache_counts["hit"],
        "misses": cache_counts["miss"],
        "stores": cache_counts["store"],
        "corrupt": cache_counts["corrupt"],
        "hit_rate": cache_counts["hit"] / lookups if lookups else None,
    }

    counters: dict[str, float] = {}
    for rec in records:
        if rec.get("kind") == "counter":
            name = str(rec.get("name", "?"))
            counters[name] = counters.get(name, 0.0) + float(rec.get("value", 0.0))

    # Straggler / critical-path analytics.  Chunks are attributed to the
    # pid that executed them (the remote backends emit chunk spans inside
    # the worker), so per-pid busy time is real worker utilization.
    worker_stats: list[dict] = []
    stragglers: list[dict] = []
    median_chunk = 0.0
    critical_path = 0.0
    if chunks:
        by_pid: dict[int, list[Span]] = {}
        for sp in chunks:
            by_pid.setdefault(sp.pid, []).append(sp)
        for pid in sorted(by_pid):
            group = by_pid[pid]
            w_busy = sum(sp.wall_s for sp in group)
            worker_stats.append({
                "pid": pid,
                "chunks": len(group),
                "runs": sum(int(sp.labels.get("size", 0)) for sp in group),
                "busy_s": w_busy,
                "utilization": w_busy / elapsed if elapsed > 0 else None,
                "mean_s": w_busy / len(group),
                "max_s": max(sp.wall_s for sp in group),
            })
        walls = sorted(sp.wall_s for sp in chunks)
        mid = len(walls) // 2
        median_chunk = (
            walls[mid] if len(walls) % 2 else (walls[mid - 1] + walls[mid]) / 2
        )
        # The slowest single chunk is the dispatch critical path: no worker
        # count can finish the batch faster than its longest chunk.
        critical_path = walls[-1]
        if median_chunk > 0:
            stragglers = sorted(
                (
                    {
                        "chunk": sp.labels.get("chunk"),
                        "pid": sp.pid,
                        "wall_s": sp.wall_s,
                        "ratio": sp.wall_s / median_chunk,
                    }
                    for sp in chunks
                    if sp.wall_s > straggler_k * median_chunk
                ),
                key=lambda row: -row["wall_s"],
            )

    return TraceReport(
        n_records=len(records),
        spans=spans,
        unmatched_spans=unmatched,
        span_stats=_span_stats(spans),
        chunks=chunks,
        n_jobs=n_jobs,
        busy_s=busy,
        elapsed_s=elapsed,
        efficiency=efficiency,
        retry_rounds=len(retries),
        retried_chunks=retried_chunks,
        fallbacks=fallbacks,
        chunk_failures=chunk_failures,
        cache=cache,
        counters=counters,
        chaos_injections=chaos_injections,
        poison_chunks=poison_chunks,
        adaptive_stops=adaptive_stops,
        adaptive_chunks_saved=adaptive_chunks_saved,
        adaptive_points_capped=adaptive_points_capped,
        worker_stats=worker_stats,
        stragglers=stragglers,
        straggler_threshold=straggler_k,
        median_chunk_s=median_chunk,
        critical_path_s=critical_path,
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt_seconds(value: float) -> str:
    return f"{value:.4f}s" if value < 100 else f"{value:,.1f}s"


def render_report(report: TraceReport, *, width: int = 60) -> str:
    """Human rendering of a :class:`TraceReport` (``repro-sim obs report``)."""
    if report.n_records == 0:
        raise ParameterError("trace contains no records")
    out: list[str] = []

    out.append("== span timing ==")
    if report.span_stats:
        name_w = max(len(name) for name in report.span_stats)
        out.append(
            f"{'name':<{name_w}} {'count':>6} {'total':>10} {'mean':>10} "
            f"{'min':>10} {'max':>10}"
        )
        for name in sorted(
            report.span_stats, key=lambda n: -report.span_stats[n]["total_s"]
        ):
            s = report.span_stats[name]
            out.append(
                f"{name:<{name_w}} {int(s['count']):>6} {_fmt_seconds(s['total_s']):>10} "
                f"{_fmt_seconds(s['mean_s']):>10} {_fmt_seconds(s['min_s']):>10} "
                f"{_fmt_seconds(s['max_s']):>10}"
            )
    else:
        out.append("(no completed spans)")
    if report.unmatched_spans:
        out.append(f"unmatched span starts: {report.unmatched_spans}")

    if report.chunks:
        out.append("")
        out.append("== chunk timeline ==")
        rows = [
            (
                f"c{sp.labels.get('chunk', '?'):>3} pid{sp.pid}",
                sp.start_mono,
                sp.end_mono,
            )
            for sp in report.chunks[:MAX_GANTT_ROWS]
        ]
        out.append(ascii_gantt(rows, width=width))
        if len(report.chunks) > MAX_GANTT_ROWS:
            out.append(f"... {len(report.chunks) - MAX_GANTT_ROWS} more chunks not shown")

        hist = report.chunk_latency_histogram()
        if hist:
            out.append("")
            out.append("== chunk latency histogram ==")
            out.append(ascii_histogram(hist, width=max(20, width - 30)))

        out.append("")
        out.append("== parallel execution ==")
        out.append(f"chunks completed    : {len(report.chunks)}")
        out.append(f"n_jobs              : {report.n_jobs}")
        out.append(f"elapsed (dispatch)  : {_fmt_seconds(report.elapsed_s)}")
        out.append(f"busy (sum of chunks): {_fmt_seconds(report.busy_s)}")
        if report.efficiency is not None:
            out.append(
                f"parallel efficiency : {report.efficiency:.1%} "
                f"(busy / elapsed x {report.n_jobs} jobs)"
            )
        out.append(f"median chunk        : {_fmt_seconds(report.median_chunk_s)}")
        out.append(
            f"critical path       : {_fmt_seconds(report.critical_path_s)} "
            f"(slowest chunk; the floor for any worker count)"
        )

        if report.worker_stats:
            out.append("")
            out.append("== worker utilization ==")
            out.append(
                f"{'pid':>8} {'chunks':>7} {'runs':>8} {'busy':>10} "
                f"{'util':>7} {'mean':>10} {'max':>10}"
            )
            for w in report.worker_stats:
                util = (
                    f"{w['utilization']:.1%}"
                    if w["utilization"] is not None else "-"
                )
                out.append(
                    f"{w['pid']:>8} {w['chunks']:>7} {w['runs']:>8} "
                    f"{_fmt_seconds(w['busy_s']):>10} {util:>7} "
                    f"{_fmt_seconds(w['mean_s']):>10} "
                    f"{_fmt_seconds(w['max_s']):>10}"
                )

        if report.stragglers:
            out.append("")
            out.append(
                f"== stragglers (> {report.straggler_threshold:g}x median "
                f"{_fmt_seconds(report.median_chunk_s)}) =="
            )
            shown = report.stragglers[:10]
            for row in shown:
                out.append(
                    f"chunk {row['chunk']!s:>4} pid{row['pid']}: "
                    f"{_fmt_seconds(row['wall_s'])} ({row['ratio']:.1f}x median)"
                )
            if len(report.stragglers) > len(shown):
                out.append(
                    f"... {len(report.stragglers) - len(shown)} more stragglers"
                )
    failures = sum(report.chunk_failures.values())
    out.append(f"retry rounds        : {report.retry_rounds}"
               f" ({report.retried_chunks} chunk retries)")
    out.append(f"serial fallbacks    : {report.fallbacks}")
    if report.adaptive_stops:
        out.append(
            f"adaptive stops      : {report.adaptive_stops} "
            f"({report.adaptive_chunks_saved} chunks saved, "
            f"{report.adaptive_points_capped} points capped at max_runs)"
        )
    if failures:
        detail = ", ".join(
            f"{kind}={count}" for kind, count in sorted(report.chunk_failures.items())
        )
        out.append(f"failed chunk runs   : {failures} ({detail})")
    if report.poison_chunks:
        out.append(f"poisoned chunks     : {report.poison_chunks}")
    if report.chaos_injections:
        detail = ", ".join(
            f"{action}={count}"
            for action, count in sorted(report.chaos_injections.items())
        )
        injected = sum(report.chaos_injections.values())
        out.append(f"chaos injections    : {injected} ({detail})")

    out.append("")
    out.append("== cache ==")
    if report.cache["hits"] or report.cache["misses"] or report.cache["stores"]:
        rate = report.cache["hit_rate"]
        out.append(
            f"hits {report.cache['hits']}  misses {report.cache['misses']}  "
            f"stores {report.cache['stores']}  corrupt {report.cache['corrupt']}"
            + (f"  hit rate {rate:.1%}" if rate is not None else "")
        )
    else:
        out.append("(no cache activity)")

    if report.counters:
        out.append("")
        out.append("== counters (trace-summed) ==")
        name_w = max(len(name) for name in report.counters)
        for name in sorted(report.counters):
            out.append(f"{name:<{name_w}} {report.counters[name]:g}")
    return "\n".join(out)
