"""repro.obs — structured observability for engines and parallel dispatch.

Eight pieces, all dependency-free and zero-cost when disabled:

* :mod:`repro.obs.trace` — spans (with v2 span/parent ids), point events
  and counters emitted as JSONL, gated by ``REPRO_TRACE`` /
  ``repro-sim --log-json PATH``;
* :mod:`repro.obs.schema` — the checked-in event schema
  (``event_schema.json``, v1 and v2) and its validator;
* :mod:`repro.obs.metrics` — always-on cross-process counters / gauges /
  log-bucket histograms; worker deltas are merged back by
  :func:`repro.parallel.run_chunked`, exportable as JSON or Prometheus
  text;
* :mod:`repro.obs.report` — trace analytics: span pairing, per-chunk
  timeline (ASCII Gantt), chunk-latency histogram, parallel efficiency,
  retry / fallback / cache-hit rates (``repro-sim obs report``);
* :mod:`repro.obs.manifest` — deterministic :class:`RunManifest`
  provenance records attached to every simulation ``RunSet`` and
  serialised via :mod:`repro.io`;
* :mod:`repro.obs.progress` — the always-on, thread-safe
  :class:`ProgressTracker` behind ``/progress`` and ``/workers``: live
  dispatch/sweep/fleet state fed by the dispatch, sweep and tcp layers;
* :mod:`repro.obs.server` — the embedded HTTP telemetry plane
  (``/metrics``, ``/progress``, ``/workers``, ``/healthz``), enabled by
  ``--telemetry-port`` / ``REPRO_TELEMETRY_PORT``;
* :mod:`repro.obs.promtext` — a dependency-free Prometheus
  text-exposition parser/validator for scrape payloads (CI probe, tests).

Quickstart::

    import repro, repro.obs as obs

    with obs.trace_to("run.jsonl"):
        rs = repro.simulate_restart(..., n_jobs=4)
    print(obs.render_report(obs.analyze_trace("run.jsonl")))
    print(obs.metrics.to_prometheus())
"""

from repro.obs import metrics
from repro.obs.manifest import MANIFEST_SCHEMA, RunManifest, host_info, seed_provenance
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import PROGRESS_SCHEMA, WORKERS_SCHEMA, ProgressTracker, get_tracker
from repro.obs.report import Span, TraceReport, analyze_trace, render_report
from repro.obs.server import (
    TELEMETRY_ENV_VAR,
    TelemetryServer,
    active_telemetry,
    ensure_telemetry,
    start_telemetry,
    stop_telemetry,
)
from repro.obs.schema import EVENT_SCHEMA_PATH, load_event_schema, validate_event
from repro.obs.trace import (
    EVENT_SCHEMA_ID,
    EVENT_SCHEMA_ID_V1,
    TRACE_ENV_VAR,
    count,
    counters,
    current_span_id,
    disable_trace,
    enable_trace,
    enabled,
    event,
    format_event,
    read_events,
    reset_counters,
    span,
    trace_path,
    trace_to,
)

__all__ = [
    # tracing
    "TRACE_ENV_VAR",
    "EVENT_SCHEMA_ID",
    "EVENT_SCHEMA_ID_V1",
    "enabled",
    "enable_trace",
    "disable_trace",
    "trace_path",
    "trace_to",
    "event",
    "span",
    "current_span_id",
    "count",
    "counters",
    "reset_counters",
    "format_event",
    "read_events",
    # schema
    "EVENT_SCHEMA_PATH",
    "load_event_schema",
    "validate_event",
    # metrics
    "metrics",
    "MetricsRegistry",
    # report
    "Span",
    "TraceReport",
    "analyze_trace",
    "render_report",
    # progress + telemetry server
    "PROGRESS_SCHEMA",
    "WORKERS_SCHEMA",
    "ProgressTracker",
    "get_tracker",
    "TELEMETRY_ENV_VAR",
    "TelemetryServer",
    "active_telemetry",
    "ensure_telemetry",
    "start_telemetry",
    "stop_telemetry",
    # manifests
    "MANIFEST_SCHEMA",
    "RunManifest",
    "host_info",
    "seed_provenance",
]
