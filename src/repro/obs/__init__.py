"""repro.obs — structured observability for engines and parallel dispatch.

Three pieces, all dependency-free and zero-cost when disabled:

* :mod:`repro.obs.trace` — spans, point events and counters emitted as
  JSONL, gated by ``REPRO_TRACE`` / ``repro-sim --log-json PATH``;
* :mod:`repro.obs.schema` — the checked-in event schema
  (``event_schema.json``) and its validator;
* :mod:`repro.obs.manifest` — deterministic :class:`RunManifest`
  provenance records attached to every simulation ``RunSet`` and
  serialised via :mod:`repro.io`.

Quickstart::

    import repro, repro.obs as obs

    with obs.trace_to("run.jsonl"):
        rs = repro.simulate_restart(..., n_jobs=4)
    print(repro.obs.RunManifest.from_dict(rs.meta["manifest"]).describe())
"""

from repro.obs.manifest import MANIFEST_SCHEMA, RunManifest, host_info, seed_provenance
from repro.obs.schema import EVENT_SCHEMA_PATH, load_event_schema, validate_event
from repro.obs.trace import (
    EVENT_SCHEMA_ID,
    TRACE_ENV_VAR,
    count,
    counters,
    disable_trace,
    enable_trace,
    enabled,
    event,
    format_event,
    read_events,
    reset_counters,
    span,
    trace_path,
    trace_to,
)

__all__ = [
    # tracing
    "TRACE_ENV_VAR",
    "EVENT_SCHEMA_ID",
    "enabled",
    "enable_trace",
    "disable_trace",
    "trace_path",
    "trace_to",
    "event",
    "span",
    "count",
    "counters",
    "reset_counters",
    "format_event",
    "read_events",
    # schema
    "EVENT_SCHEMA_PATH",
    "load_event_schema",
    "validate_event",
    # manifests
    "MANIFEST_SCHEMA",
    "RunManifest",
    "host_info",
    "seed_provenance",
]
