"""Structured tracing core: spans, events, counters, JSONL emission.

The design goal is **zero cost when off**: every entry point first reads a
single module-level reference (``_emitter``) and returns immediately when
tracing is disabled, so instrumentation can stay permanently wired into hot
paths (engines, chunk dispatch) without measurable overhead.

Activation
----------
* programmatic: :func:`enable_trace` / :func:`disable_trace` /
  :func:`trace_to` (scoped);
* environment: exporting ``REPRO_TRACE=/path/to/trace.jsonl`` enables
  tracing at import time — this is also how worker processes spawned by
  :mod:`repro.parallel` pick up the parent's trace destination
  (:func:`enable_trace` exports the variable by default);
* CLI: every simulation subcommand of ``repro-sim`` accepts
  ``--log-json PATH``.

Emission
--------
Each record is one JSON object per line (JSONL), validating against the
checked-in schema (:mod:`repro.obs.schema`).  Records carry a wall-clock
timestamp ``ts``, a monotonic timestamp ``mono`` (comparable across
processes of the same boot on Linux), the emitting ``pid``, a ``kind``
(``event`` / ``span_start`` / ``span_end`` / ``counter``), a ``name`` and
optional ``labels``.  ``span_end`` adds the span's ``wall_s``; ``counter``
adds the increment ``value``.

Files are opened in append mode; one-line writes are atomic enough under
``O_APPEND`` for the multi-process fan-out of :func:`repro.parallel.run_chunked`.

>>> import repro.obs as obs
>>> obs.enabled()
False
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, TextIO

__all__ = [
    "TRACE_ENV_VAR",
    "EVENT_SCHEMA_ID",
    "enabled",
    "enable_trace",
    "disable_trace",
    "trace_path",
    "trace_to",
    "event",
    "span",
    "count",
    "counters",
    "reset_counters",
    "format_event",
    "read_events",
]

#: environment variable naming the JSONL destination; when set, tracing is
#: enabled at import time (which is how pool workers inherit it).
TRACE_ENV_VAR = "REPRO_TRACE"

#: schema identifier stamped on every emitted line (see ``event_schema.json``).
EVENT_SCHEMA_ID = "repro/obs-event-v1"

_KINDS = ("event", "span_start", "span_end", "counter")


class _JsonlEmitter:
    """Thread-safe append-mode JSONL writer."""

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._file: TextIO = open(self.path, "a", encoding="utf-8")

    def write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True, default=str)
        with self._lock:
            if self._file.closed:  # raced with disable_trace: drop silently
                return
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


_emitter: _JsonlEmitter | None = None
_counters: dict[str, float] = {}
_counter_lock = threading.Lock()


# ---------------------------------------------------------------------------
# Activation
# ---------------------------------------------------------------------------


def enabled() -> bool:
    """Whether a JSONL trace destination is currently installed."""
    return _emitter is not None


def trace_path() -> str | None:
    """The active trace file path, or ``None`` when tracing is off."""
    return _emitter.path if _emitter is not None else None


def enable_trace(path: str | Path, *, export_env: bool = True) -> None:
    """Start emitting JSONL trace records to *path* (append mode).

    With ``export_env=True`` (the default) the path is also exported as
    ``REPRO_TRACE`` so that worker processes spawned afterwards (e.g. by
    the process backend of :mod:`repro.parallel`) emit to the same file.
    """
    global _emitter
    disable_trace(clear_env=False)
    _emitter = _JsonlEmitter(path)
    if export_env:
        os.environ[TRACE_ENV_VAR] = str(path)


def disable_trace(*, clear_env: bool = True) -> None:
    """Stop tracing and close the output file (no-op when already off)."""
    global _emitter
    if _emitter is not None:
        _emitter.close()
        _emitter = None
    if clear_env:
        os.environ.pop(TRACE_ENV_VAR, None)


@contextmanager
def trace_to(path: str | Path, *, export_env: bool = True) -> Iterator[None]:
    """Scoped tracing: enable on entry, restore the previous state on exit.

    >>> import repro.obs as obs
    >>> with obs.trace_to("/tmp/doctest-trace.jsonl", export_env=False):
    ...     obs.enabled()
    True
    """
    previous = trace_path()
    enable_trace(path, export_env=export_env)
    try:
        yield
    finally:
        if previous is not None:
            enable_trace(previous, export_env=export_env)
        else:
            disable_trace(clear_env=export_env)


def _activate_from_env() -> None:
    """Enable tracing if ``REPRO_TRACE`` names a writable destination.

    Called at import time; a broken path must never take a worker process
    down, so failures are swallowed (tracing simply stays off).
    """
    raw = os.environ.get(TRACE_ENV_VAR, "").strip()
    if not raw or enabled():
        return
    try:
        enable_trace(raw, export_env=False)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


def _record(kind: str, name: str, labels: dict[str, Any]) -> dict:
    rec: dict[str, Any] = {
        "schema": EVENT_SCHEMA_ID,
        "kind": kind,
        "name": name,
        "ts": time.time(),
        "mono": time.monotonic(),
        "pid": os.getpid(),
    }
    if labels:
        rec["labels"] = labels
    return rec


def event(name: str, **labels: Any) -> None:
    """Emit a point event (no-op when tracing is off)."""
    em = _emitter
    if em is None:
        return
    em.write(_record("event", name, labels))


@contextmanager
def span(name: str, **labels: Any) -> Iterator[None]:
    """Emit a ``span_start`` / ``span_end`` pair around the block.

    The ``span_end`` record carries the measured wall time (``wall_s``,
    monotonic clock) and repeats the labels, so either end of the pair is
    self-describing.  When tracing is off the block runs untouched — no
    timer reads, no allocations.
    """
    em = _emitter
    if em is None:
        yield
        return
    start = time.monotonic()
    em.write(_record("span_start", name, labels))
    try:
        yield
    finally:
        rec = _record("span_end", name, labels)
        rec["wall_s"] = time.monotonic() - start
        # late-bound: the emitter may have been swapped inside the block
        (_emitter or em).write(rec)


def count(name: str, value: float = 1.0, **labels: Any) -> None:
    """Add *value* to counter *name* and emit a ``counter`` record.

    Counters live in a thread-safe in-process registry
    (:func:`counters`); like every other entry point this is a no-op when
    tracing is off, so hot paths may call it unconditionally.
    """
    em = _emitter
    if em is None:
        return
    v = float(value)
    with _counter_lock:
        _counters[name] = _counters.get(name, 0.0) + v
    rec = _record("counter", name, labels)
    rec["value"] = v
    em.write(rec)


def counters() -> dict[str, float]:
    """Snapshot of the in-process counter registry."""
    with _counter_lock:
        return dict(_counters)


def reset_counters() -> None:
    """Clear the in-process counter registry."""
    with _counter_lock:
        _counters.clear()


# ---------------------------------------------------------------------------
# Reading traces back
# ---------------------------------------------------------------------------


def read_events(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file into a list of event records.

    Blank lines are skipped; a torn final line (trace still being written)
    is tolerated and dropped.
    """
    records: list[dict] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                continue  # torn tail write
            raise
    return records


def format_event(record: dict) -> str:
    """One-line human rendering of a trace record (``repro-sim obs tail``)."""
    kind = str(record.get("kind", "?"))
    name = str(record.get("name", "?"))
    parts = [f"[{kind:<10}]", name]
    if "wall_s" in record:
        parts.append(f"wall={float(record['wall_s']):.4f}s")
    if "value" in record:
        parts.append(f"value={record['value']:g}")
    labels = record.get("labels") or {}
    parts.extend(f"{k}={v}" for k, v in sorted(labels.items()))
    if "pid" in record:
        parts.append(f"pid={record['pid']}")
    return " ".join(parts)


_activate_from_env()
