"""Structured tracing core: spans, events, counters, JSONL emission.

The design goal is **zero cost when off**: every entry point first reads a
single module-level reference (``_emitter``) and returns immediately when
tracing is disabled, so instrumentation can stay permanently wired into hot
paths (engines, chunk dispatch) without measurable overhead.

Activation
----------
* programmatic: :func:`enable_trace` / :func:`disable_trace` /
  :func:`trace_to` (scoped);
* environment: exporting ``REPRO_TRACE=/path/to/trace.jsonl`` enables
  tracing at import time — this is also how worker processes spawned by
  :mod:`repro.parallel` pick up the parent's trace destination
  (:func:`enable_trace` exports the variable by default);
* CLI: every simulation subcommand of ``repro-sim`` accepts
  ``--log-json PATH``.

Emission
--------
Each record is one JSON object per line (JSONL), validating against the
checked-in schema (:mod:`repro.obs.schema`).  Records carry a wall-clock
timestamp ``ts``, a monotonic timestamp ``mono`` (comparable across
processes of the same boot on Linux), the emitting ``pid``, a ``kind``
(``event`` / ``span_start`` / ``span_end`` / ``counter``), a ``name`` and
optional ``labels``.  ``span_end`` adds the span's ``wall_s``; ``counter``
adds the increment ``value``.

Schema v2 adds span identity: every ``span_start``/``span_end`` pair
carries a process-unique ``span_id`` and, when nested under another span
(or given an explicit parent, e.g. a worker chunk under the parent
process's dispatch span), a ``parent_id``.  Point events emitted inside a
span inherit its id as their ``parent_id``.  This is what lets
:mod:`repro.obs.report` pair the ends of concurrent spans from a process
pool, where interleaving makes name-based pairing ambiguous.
:func:`read_events` and :func:`~repro.obs.schema.validate_event` accept
both v1 and v2 lines.

Files are opened in append mode; one-line writes are atomic enough under
``O_APPEND`` for the multi-process fan-out of :func:`repro.parallel.run_chunked`.
Fork-start pools are safe too: an :func:`os.register_at_fork` handler
reopens the JSONL file in the child, so parent and child never share one
Python file object (and a child ``disable_trace`` cannot close the
parent's handle).

>>> import repro.obs as obs
>>> obs.enabled()
False
"""

from __future__ import annotations

import itertools
import json
import os
import secrets
import threading
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, TextIO

__all__ = [
    "TRACE_ENV_VAR",
    "EVENT_SCHEMA_ID",
    "EVENT_SCHEMA_ID_V1",
    "enabled",
    "enable_trace",
    "disable_trace",
    "trace_path",
    "trace_to",
    "event",
    "span",
    "current_span_id",
    "count",
    "counters",
    "reset_counters",
    "format_event",
    "read_events",
]

#: environment variable naming the JSONL destination; when set, tracing is
#: enabled at import time (which is how pool workers inherit it).
TRACE_ENV_VAR = "REPRO_TRACE"

#: schema identifier stamped on every emitted line (see ``event_schema.json``).
EVENT_SCHEMA_ID = "repro/obs-event-v2"

#: the previous schema identifier; still accepted by :func:`read_events`
#: and :func:`repro.obs.schema.validate_event` (v1 lines carry no span ids).
EVENT_SCHEMA_ID_V1 = "repro/obs-event-v1"

_KINDS = ("event", "span_start", "span_end", "counter")


class _JsonlEmitter:
    """Thread-safe append-mode JSONL writer."""

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._file: TextIO = open(self.path, "a", encoding="utf-8")

    def write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True, default=str)
        with self._lock:
            if self._file.closed:  # raced with disable_trace: drop silently
                return
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def reopen_in_child(self) -> None:
        """Replace the fork-inherited file object with a fresh one.

        Called from the ``os.register_at_fork`` child handler: the lock is
        re-created (a lock held by another thread at fork time would stay
        locked forever in the child) and the JSONL file is reopened so the
        child appends through its own descriptor.  The inherited handle is
        closed afterwards — its buffer is empty because every write
        flushes — which only closes the child's duplicate, never the
        parent's.
        """
        old = self._file
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")
        try:
            old.close()
        except Exception:
            pass


_emitter: _JsonlEmitter | None = None
_counters: dict[str, float] = {}
_counter_lock = threading.Lock()

# --- span identity ---------------------------------------------------------
# Span ids must be unique across every process appending to one trace file.
# A per-process random prefix plus an atomic in-process sequence gives that
# without any cross-process coordination (pid alone could be recycled).
_SPAN_ID_PREFIX = secrets.token_hex(4)
_span_seq = itertools.count(1)
_span_stack = threading.local()


def _new_span_id() -> str:
    return f"{_SPAN_ID_PREFIX}-{next(_span_seq):x}"


def _stack_ids() -> list[str]:
    ids = getattr(_span_stack, "ids", None)
    if ids is None:
        ids = _span_stack.ids = []
    return ids


def current_span_id() -> str | None:
    """The id of the innermost active span on this thread, if any.

    Used to propagate span parentage across process boundaries: the parent
    captures it before submitting work and the worker passes it to
    :func:`span` as ``parent_id``.
    """
    ids = getattr(_span_stack, "ids", None)
    return ids[-1] if ids else None


def _reset_after_fork() -> None:
    """Fork hygiene for the child process (``os.register_at_fork``).

    Two independent hazards when a fork-start pool inherits tracing state:

    * the JSONL file object is shared with the parent — the child must
      reopen it so a child ``disable_trace`` (or interpreter exit) cannot
      close or corrupt the parent's handle;
    * the span-id prefix and sequence are shared too — two forked workers
      would mint *identical* span ids, silently mis-pairing concurrent
      chunk spans in the analyzer.  The child gets fresh identity and an
      empty span stack (cross-process parentage is always explicit, via
      ``span(parent_id=...)``).
    """
    global _emitter, _SPAN_ID_PREFIX, _span_seq, _span_stack
    _SPAN_ID_PREFIX = secrets.token_hex(4)
    _span_seq = itertools.count(1)
    _span_stack = threading.local()
    em = _emitter
    if em is None:
        return
    _emitter = None  # stay off if the reopen fails
    try:
        em.reopen_in_child()
    except OSError:
        return
    _emitter = em


if hasattr(os, "register_at_fork"):  # not on every platform
    os.register_at_fork(after_in_child=_reset_after_fork)


# ---------------------------------------------------------------------------
# Activation
# ---------------------------------------------------------------------------


def enabled() -> bool:
    """Whether a JSONL trace destination is currently installed."""
    return _emitter is not None


def trace_path() -> str | None:
    """The active trace file path, or ``None`` when tracing is off."""
    return _emitter.path if _emitter is not None else None


def enable_trace(path: str | Path, *, export_env: bool = True) -> None:
    """Start emitting JSONL trace records to *path* (append mode).

    With ``export_env=True`` (the default) the path is also exported as
    ``REPRO_TRACE`` so that worker processes spawned afterwards (e.g. by
    the process backend of :mod:`repro.parallel`) emit to the same file.
    """
    global _emitter
    disable_trace(clear_env=False)
    _emitter = _JsonlEmitter(path)
    if export_env:
        os.environ[TRACE_ENV_VAR] = str(path)


def disable_trace(*, clear_env: bool = True) -> None:
    """Stop tracing and close the output file (no-op when already off)."""
    global _emitter
    if _emitter is not None:
        _emitter.close()
        _emitter = None
    if clear_env:
        os.environ.pop(TRACE_ENV_VAR, None)


@contextmanager
def trace_to(path: str | Path, *, export_env: bool = True) -> Iterator[None]:
    """Scoped tracing: enable on entry, restore the previous state on exit.

    >>> import repro.obs as obs
    >>> with obs.trace_to("/tmp/doctest-trace.jsonl", export_env=False):
    ...     obs.enabled()
    True
    """
    previous = trace_path()
    enable_trace(path, export_env=export_env)
    try:
        yield
    finally:
        if previous is not None:
            enable_trace(previous, export_env=export_env)
        else:
            disable_trace(clear_env=export_env)


def _activate_from_env() -> None:
    """Enable tracing if ``REPRO_TRACE`` names a writable destination.

    Called at import time; a broken path must never take a worker process
    down, so failures are swallowed (tracing simply stays off).
    """
    raw = os.environ.get(TRACE_ENV_VAR, "").strip()
    if not raw or enabled():
        return
    try:
        enable_trace(raw, export_env=False)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


def _record(kind: str, name: str, labels: dict[str, Any]) -> dict:
    rec: dict[str, Any] = {
        "schema": EVENT_SCHEMA_ID,
        "kind": kind,
        "name": name,
        "ts": time.time(),
        "mono": time.monotonic(),
        "pid": os.getpid(),
    }
    if labels:
        rec["labels"] = labels
    return rec


def event(name: str, **labels: Any) -> None:
    """Emit a point event (no-op when tracing is off).

    When emitted inside an active :func:`span`, the record carries that
    span's id as ``parent_id`` so the analyzer can attribute it.
    """
    em = _emitter
    if em is None:
        return
    rec = _record("event", name, labels)
    parent = current_span_id()
    if parent is not None:
        rec["parent_id"] = parent
    em.write(rec)


@contextmanager
def span(name: str, *, parent_id: str | None = None, **labels: Any) -> Iterator[str | None]:
    """Emit a ``span_start`` / ``span_end`` pair around the block.

    Both records carry a unique ``span_id`` (and a ``parent_id``: the
    explicit *parent_id* argument if given — e.g. a span id captured in
    another process — else the enclosing span on this thread).  The block
    receives the span id, so callers can hand it to work dispatched
    elsewhere::

        with obs.span("dispatch") as sid:
            submit(task, parent_id=sid)

    The ``span_end`` record carries the measured wall time (``wall_s``,
    monotonic clock) and repeats the labels, so either end of the pair is
    self-describing.  When tracing is off the block runs untouched — no
    timer reads, no allocations — and yields ``None``.
    """
    em = _emitter
    if em is None:
        yield None
        return
    span_id = _new_span_id()
    parent = parent_id if parent_id is not None else current_span_id()
    start = time.monotonic()
    rec = _record("span_start", name, labels)
    rec["span_id"] = span_id
    if parent is not None:
        rec["parent_id"] = parent
    em.write(rec)
    ids = _stack_ids()
    ids.append(span_id)
    try:
        yield span_id
    finally:
        if ids and ids[-1] == span_id:
            ids.pop()
        rec = _record("span_end", name, labels)
        rec["span_id"] = span_id
        if parent is not None:
            rec["parent_id"] = parent
        rec["wall_s"] = time.monotonic() - start
        # late-bound: the emitter may have been swapped inside the block
        (_emitter or em).write(rec)


def count(name: str, value: float = 1.0, **labels: Any) -> None:
    """Add *value* to counter *name* and emit a ``counter`` record.

    Counters live in a thread-safe in-process registry
    (:func:`counters`); like every other entry point this is a no-op when
    tracing is off, so hot paths may call it unconditionally.
    """
    em = _emitter
    if em is None:
        return
    v = float(value)
    with _counter_lock:
        _counters[name] = _counters.get(name, 0.0) + v
    rec = _record("counter", name, labels)
    rec["value"] = v
    em.write(rec)


def counters() -> dict[str, float]:
    """Snapshot of the in-process counter registry."""
    with _counter_lock:
        return dict(_counters)


def reset_counters() -> None:
    """Clear the in-process counter registry."""
    with _counter_lock:
        _counters.clear()


# ---------------------------------------------------------------------------
# Reading traces back
# ---------------------------------------------------------------------------


def read_events(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file into a list of event records.

    Blank lines are skipped.  Unparseable lines are skipped too, anywhere
    in the file — concurrent ``O_APPEND`` writers (a killed worker, a
    filled filesystem) can tear *any* line, not just the last.  A torn
    final line (trace still being written) is dropped silently; torn lines
    elsewhere raise a :class:`RuntimeWarning` naming how many were
    skipped, so silent data loss is still visible.
    """
    records: list[dict] = []
    torn = 0
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i < len(lines) - 1:  # a torn tail write is routine
                torn += 1
    if torn:
        warnings.warn(
            f"{path}: skipped {torn} unparseable trace line(s) "
            "(torn writes from concurrent or killed processes)",
            RuntimeWarning,
            stacklevel=2,
        )
    return records


def format_event(record: dict) -> str:
    """One-line human rendering of a trace record (``repro-sim obs tail``)."""
    kind = str(record.get("kind", "?"))
    name = str(record.get("name", "?"))
    parts = [f"[{kind:<10}]", name]
    if "wall_s" in record:
        parts.append(f"wall={float(record['wall_s']):.4f}s")
    if "value" in record:
        parts.append(f"value={record['value']:g}")
    labels = record.get("labels") or {}
    parts.extend(f"{k}={v}" for k, v in sorted(labels.items()))
    if "pid" in record:
        parts.append(f"pid={record['pid']}")
    return " ".join(parts)


_activate_from_env()
