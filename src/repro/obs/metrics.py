"""Cross-process metrics: counters, gauges and log-bucket histograms.

:mod:`repro.obs.trace` counters are *trace-bound*: they record increments
as JSONL lines and keep a per-process tally, so everything incremented
inside a pool worker is lost to the parent (and nothing is recorded at all
when tracing is off).  This module is the always-on complement: a
thread-safe in-process :class:`MetricsRegistry` whose state is a plain
JSON-serialisable snapshot, designed so that worker processes can ship a
**delta** of what one chunk added back to the parent alongside the chunk
result, and :func:`repro.parallel.run_chunked` can merge those deltas into
the parent registry without double counting — a chunk's delta travels only
with its successful attempt, so retries and serial fallback keep the
merged metrics identical to a serial run.

Three instrument kinds:

* **counter** — monotonically increasing float (:func:`inc`);
* **gauge** — last-written value (:func:`set_gauge`); merges overwrite;
* **histogram** — fixed log-spaced buckets (:func:`observe`): every
  registry in every process uses the same :data:`BUCKET_BOUNDS`, so two
  histograms merge by element-wise bucket addition, exactly like
  Prometheus cumulative histograms re-aggregate.

Series are identified by name plus optional labels, rendered
Prometheus-style (``name{k="v"}``) so snapshots stay flat string-keyed
dicts.  Export as JSON (:func:`save_metrics`) or Prometheus text
exposition (:func:`to_prometheus`).

All operations are dict updates behind one lock — cheap enough to call
unconditionally from hot paths at batch/chunk granularity (never
per-iteration), preserving the repo's zero-cost-when-off discipline for
the *trace* layer while metrics stay always-on.

>>> from repro.obs import metrics
>>> reg = metrics.MetricsRegistry()
>>> reg.inc("demo.events", 3)
>>> reg.snapshot()["counters"]["demo.events"]
3.0
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ParameterError

__all__ = [
    "BUCKET_BOUNDS",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "bucket_label",
    "get_registry",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "snapshot_delta",
    "merge",
    "reset",
    "to_prometheus",
    "save_metrics",
]

#: schema identifier stamped on JSON metric dumps.
METRICS_SCHEMA = "repro/metrics-v1"

#: fixed histogram bucket upper bounds: two log-spaced buckets per decade
#: from 1e-6 to 1e4 (seconds-oriented, but unit-agnostic), plus an implicit
#: +Inf overflow bucket.  Fixed — never derived from the data — so
#: histograms recorded in different processes merge exactly.
BUCKET_BOUNDS: tuple[float, ...] = tuple(10.0 ** (k / 2.0) for k in range(-12, 9))


def bucket_label(index: int) -> str:
    """Human label for bucket *index* (``report`` histogram rows)."""
    if index == 0:
        return f"< {BUCKET_BOUNDS[0]:.3g}"
    if index >= len(BUCKET_BOUNDS):
        return f">= {BUCKET_BOUNDS[-1]:.3g}"
    return f"{BUCKET_BOUNDS[index - 1]:.3g} - {BUCKET_BOUNDS[index]:.3g}"


def _series_key(name: str, labels: Mapping[str, Any]) -> str:
    """Render ``name`` + labels as a flat Prometheus-style series key."""
    if not labels:
        return name
    inner = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe counters / gauges / fixed-bucket histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # histogram value: [bucket counts (len(BUCKET_BOUNDS)+1), sum, count]
        self._hists: dict[str, tuple[list[int], float, int]] = {}

    # -- recording -----------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add *value* (default 1) to counter *name*."""
        key = _series_key(name, labels)
        v = float(value)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + v

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Record *value* as the current level of gauge *name*."""
        key = _series_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation of *value* into histogram *name*."""
        key = _series_key(name, labels)
        v = float(value)
        if math.isnan(v):
            return
        bucket = bisect_left(BUCKET_BOUNDS, v)
        with self._lock:
            counts, total, n = self._hists.get(
                key, ([0] * (len(BUCKET_BOUNDS) + 1), 0.0, 0)
            )
            counts = list(counts)
            counts[bucket] += 1
            self._hists[key] = (counts, total + v, n + 1)

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serialisable copy of the registry state."""
        with self._lock:
            return {
                "schema": METRICS_SCHEMA,
                "bounds": list(BUCKET_BOUNDS),
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: {"buckets": list(counts), "sum": total, "count": n}
                    for key, (counts, total, n) in self._hists.items()
                },
            }

    def merge(self, snap: Mapping) -> None:
        """Fold a snapshot (or delta) from another registry into this one.

        Counters and histogram buckets add; gauges take the incoming
        value.  Raises on a bucket-layout mismatch — merging histograms
        recorded against different bounds would be silent nonsense.
        """
        bounds = snap.get("bounds")
        if bounds is not None and tuple(bounds) != BUCKET_BOUNDS:
            raise ParameterError(
                "cannot merge metrics recorded against different histogram bounds"
            )
        with self._lock:
            for key, value in snap.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0.0) + float(value)
            for key, value in snap.get("gauges", {}).items():
                self._gauges[key] = float(value)
            for key, hist in snap.get("histograms", {}).items():
                incoming = list(hist["buckets"])
                counts, total, n = self._hists.get(
                    key, ([0] * (len(BUCKET_BOUNDS) + 1), 0.0, 0)
                )
                if len(incoming) != len(counts):
                    raise ParameterError(
                        f"histogram {key!r}: bucket count mismatch "
                        f"({len(incoming)} vs {len(counts)})"
                    )
                self._hists[key] = (
                    [a + b for a, b in zip(counts, incoming)],
                    total + float(hist.get("sum", 0.0)),
                    n + int(hist.get("count", 0)),
                )

    def reset(self) -> None:
        """Drop every recorded series."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


def snapshot_delta(before: Mapping, after: Mapping) -> dict:
    """What happened between two snapshots of the *same* registry.

    This is how a pool worker reports one chunk's metrics: snapshot before
    the chunk, snapshot after, ship the difference.  Works regardless of
    what the worker inherited at fork time or accumulated over earlier
    chunks, because inherited state subtracts out.  Counters and histogram
    buckets subtract (series that did not change are dropped); gauges keep
    the ``after`` value for gauges written between the snapshots.
    """
    delta: dict = {
        "schema": METRICS_SCHEMA,
        "bounds": list(after.get("bounds", BUCKET_BOUNDS)),
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    before_counters = before.get("counters", {})
    for key, value in after.get("counters", {}).items():
        diff = float(value) - float(before_counters.get(key, 0.0))
        if diff != 0.0:
            delta["counters"][key] = diff
    before_gauges = before.get("gauges", {})
    for key, value in after.get("gauges", {}).items():
        if key not in before_gauges or before_gauges[key] != value:
            delta["gauges"][key] = float(value)
    before_hists = before.get("histograms", {})
    for key, hist in after.get("histograms", {}).items():
        prev = before_hists.get(key)
        if prev is None:
            counts = list(hist["buckets"])
            total, n = float(hist["sum"]), int(hist["count"])
        else:
            counts = [a - b for a, b in zip(hist["buckets"], prev["buckets"])]
            total = float(hist["sum"]) - float(prev["sum"])
            n = int(hist["count"]) - int(prev["count"])
        if n != 0 or any(counts):
            delta["histograms"][key] = {"buckets": counts, "sum": total, "count": n}
    return delta


# ---------------------------------------------------------------------------
# Process-wide default registry
# ---------------------------------------------------------------------------

_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every convenience function uses."""
    return _registry


def inc(name: str, value: float = 1.0, **labels: Any) -> None:
    """Add *value* to counter *name* in the default registry."""
    _registry.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set gauge *name* in the default registry."""
    _registry.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record an observation into histogram *name* in the default registry."""
    _registry.observe(name, value, **labels)


def snapshot() -> dict:
    """Snapshot the default registry."""
    return _registry.snapshot()


def merge(snap: Mapping) -> None:
    """Merge a snapshot/delta into the default registry."""
    _registry.merge(snap)


def reset() -> None:
    """Clear the default registry (tests, or between CLI invocations)."""
    _registry.reset()


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------


def _prom_name(key: str) -> tuple[str, str]:
    """Split a series key into (sanitised metric name, label suffix)."""
    name, brace, labels = key.partition("{")
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not safe or safe[0].isdigit():
        safe = "_" + safe
    return safe, (brace + labels if brace else "")


def to_prometheus(snap: Mapping | None = None, *, prefix: str = "repro_") -> str:
    """Render a snapshot as Prometheus text exposition format (0.0.4).

    Dots in series names become underscores; histograms expand to
    cumulative ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``,
    so the output scrapes/pushes straight into a Prometheus stack.
    """
    if snap is None:
        snap = snapshot()
    lines: list[str] = []
    for key in sorted(snap.get("counters", {})):
        name, labels = _prom_name(key)
        lines.append(f"# TYPE {prefix}{name} counter")
        lines.append(f"{prefix}{name}{labels} {snap['counters'][key]:g}")
    for key in sorted(snap.get("gauges", {})):
        name, labels = _prom_name(key)
        lines.append(f"# TYPE {prefix}{name} gauge")
        lines.append(f"{prefix}{name}{labels} {snap['gauges'][key]:g}")
    bounds = snap.get("bounds", list(BUCKET_BOUNDS))
    for key in sorted(snap.get("histograms", {})):
        hist = snap["histograms"][key]
        name, labels = _prom_name(key)
        base_labels = labels[1:-1] if labels else ""
        lines.append(f"# TYPE {prefix}{name} histogram")
        cumulative = 0
        for bound, count in zip(bounds, hist["buckets"]):
            cumulative += count
            le = f'le="{bound:g}"'
            joined = f"{{{base_labels + ',' if base_labels else ''}{le}}}"
            lines.append(f"{prefix}{name}_bucket{joined} {cumulative}")
        cumulative += hist["buckets"][-1]
        joined = f"{{{base_labels + ',' if base_labels else ''}le=\"+Inf\"}}"
        lines.append(f"{prefix}{name}_bucket{joined} {cumulative}")
        lines.append(f"{prefix}{name}_sum{labels} {hist['sum']:g}")
        lines.append(f"{prefix}{name}_count{labels} {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def save_metrics(path: str | Path, snap: Mapping | None = None) -> Path:
    """Write a snapshot to *path*: Prometheus text for ``.prom``/``.txt``
    suffixes, pretty-printed JSON otherwise.  Returns the path."""
    path = Path(path)
    if snap is None:
        snap = snapshot()
    if path.suffix in (".prom", ".txt"):
        path.write_text(to_prometheus(snap), encoding="utf-8")
    else:
        path.write_text(
            json.dumps(snap, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return path
