"""Cross-process metrics: counters, gauges and log-bucket histograms.

:mod:`repro.obs.trace` counters are *trace-bound*: they record increments
as JSONL lines and keep a per-process tally, so everything incremented
inside a pool worker is lost to the parent (and nothing is recorded at all
when tracing is off).  This module is the always-on complement: a
thread-safe in-process :class:`MetricsRegistry` whose state is a plain
JSON-serialisable snapshot, designed so that worker processes can ship a
**delta** of what one chunk added back to the parent alongside the chunk
result, and :func:`repro.parallel.run_chunked` can merge those deltas into
the parent registry without double counting — a chunk's delta travels only
with its successful attempt, so retries and serial fallback keep the
merged metrics identical to a serial run.

Three instrument kinds:

* **counter** — monotonically increasing float (:func:`inc`);
* **gauge** — last-written value (:func:`set_gauge`); merges follow a
  per-suffix policy (see :meth:`MetricsRegistry.merge`): a gauge whose
  name ends in ``_peak`` merges by **max** (use :func:`set_gauge_max` to
  maintain it), every other gauge takes the incoming value;
* **histogram** — fixed log-spaced buckets (:func:`observe`): every
  registry in every process uses the same :data:`BUCKET_BOUNDS`, so two
  histograms merge by element-wise bucket addition, exactly like
  Prometheus cumulative histograms re-aggregate.

Series are identified by name plus optional labels, rendered
Prometheus-style (``name{k="v"}``) so snapshots stay flat string-keyed
dicts.  Export as JSON (:func:`save_metrics`) or Prometheus text
exposition (:func:`to_prometheus`).

All operations are dict updates behind one lock — cheap enough to call
unconditionally from hot paths at batch/chunk granularity (never
per-iteration), preserving the repo's zero-cost-when-off discipline for
the *trace* layer while metrics stay always-on.

>>> from repro.obs import metrics
>>> reg = metrics.MetricsRegistry()
>>> reg.inc("demo.events", 3)
>>> reg.snapshot()["counters"]["demo.events"]
3.0
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ParameterError

__all__ = [
    "BUCKET_BOUNDS",
    "METRICS_SCHEMA",
    "METRIC_HELP",
    "MetricsRegistry",
    "bucket_label",
    "get_registry",
    "inc",
    "set_gauge",
    "set_gauge_max",
    "observe",
    "snapshot",
    "snapshot_delta",
    "merge",
    "reset",
    "to_prometheus",
    "save_metrics",
]

#: schema identifier stamped on JSON metric dumps.
METRICS_SCHEMA = "repro/metrics-v1"

#: central metric-description map: series name (before labels) -> help
#: text.  :func:`to_prometheus` turns these into ``# HELP`` lines, so a
#: scraped dashboard documents itself.  New metrics should add a line here
#: — an unlisted name still exports, just without help text.
METRIC_HELP: dict[str, str] = {
    "adaptive.chunks_saved": (
        "Chunks never dispatched because adaptive sampling met its CI target"
    ),
    "adaptive.points_capped": (
        "Adaptive dispatches that hit max_runs without reaching the CI target"
    ),
    "cache.hits": "Result-cache lookups served from a stored entry",
    "cache.misses": "Result-cache lookups that found no usable entry",
    "cache.stores": "RunSets written into the result cache",
    "cache.corrupt": "Cache entries discarded as corrupt at load time",
    "chaos.injections": "Deterministic chaos faults injected, by action label",
    "engine.batch.batches": "Batch-engine invocations",
    "engine.batch.runs": "Monte-Carlo replications simulated by the batch engine",
    "engine.batch.iterations": "Vectorized iterations executed by the batch engine",
    "engine.batch.failures": "Failure events sampled by the batch engine",
    "engine.lockstep.batches": "Lockstep-engine invocations",
    "engine.lockstep.runs": "Replications simulated by the lockstep engine",
    "engine.lockstep.iterations": "Per-period iterations of the lockstep engine",
    "engine.lockstep.failures": "Failure events sampled by the lockstep engine",
    "engine.sampled.batches": "Sampled-engine invocations",
    "engine.sampled.runs": "Replications simulated by the sampled engine",
    "engine.sampled.periods": "Periods resolved by the sampled engine",
    "engine.sampled.attempts": "Rejection-sampling attempts in the sampled engine",
    "engine.sampled.failures": "Failure events sampled by the sampled engine",
    "engine.trace.batches": "Trace-engine invocations",
    "engine.trace.runs": "Replications simulated by the trace engine",
    "engine.trace.failures": "Trace failure records consumed",
    "engine.trace.checkpoints": "Checkpoints taken by the trace engine",
    "fault_recovery": "Recovery actions taken by the resilience machinery, by kind",
    "parallel.cache_hit_chunks": "Chunks served from the result cache by dispatch",
    "parallel.chunks": "Chunks executed (any backend, including retries)",
    "parallel.chunk_runs": "Replications executed inside completed chunks",
    "parallel.chunk_seconds": "Wall-clock seconds per executed chunk",
    "parallel.chunk_seconds_peak": (
        "Slowest chunk observed (merged by max across workers)"
    ),
    "parallel.chunk_failures": "Failed chunk attempts, by failure kind",
    "parallel.fallbacks": "Dispatches degraded to serial chunked execution",
    "parallel.poison_chunks": "Chunks quarantined after failing on distinct workers",
    "parallel.retries": "Chunk attempts re-dispatched after transient failures",
    "parallel.worker_chunks_completed": (
        "Chunks completed per tcp worker (stable host:pid label)"
    ),
    "parallel.worker_heartbeat_age": (
        "Seconds since each connected tcp worker's last heartbeat, "
        "refreshed at scrape time"
    ),
}

#: fixed histogram bucket upper bounds: two log-spaced buckets per decade
#: from 1e-6 to 1e4 (seconds-oriented, but unit-agnostic), plus an implicit
#: +Inf overflow bucket.  Fixed — never derived from the data — so
#: histograms recorded in different processes merge exactly.
BUCKET_BOUNDS: tuple[float, ...] = tuple(10.0 ** (k / 2.0) for k in range(-12, 9))


def bucket_label(index: int) -> str:
    """Human label for bucket *index* (``report`` histogram rows)."""
    if index == 0:
        return f"< {BUCKET_BOUNDS[0]:.3g}"
    if index >= len(BUCKET_BOUNDS):
        return f">= {BUCKET_BOUNDS[-1]:.3g}"
    return f"{BUCKET_BOUNDS[index - 1]:.3g} - {BUCKET_BOUNDS[index]:.3g}"


def _series_key(name: str, labels: Mapping[str, Any]) -> str:
    """Render ``name`` + labels as a flat Prometheus-style series key."""
    if not labels:
        return name
    inner = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe counters / gauges / fixed-bucket histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # histogram value: [bucket counts (len(BUCKET_BOUNDS)+1), sum, count]
        self._hists: dict[str, tuple[list[int], float, int]] = {}

    # -- recording -----------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add *value* (default 1) to counter *name*."""
        key = _series_key(name, labels)
        v = float(value)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + v

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Record *value* as the current level of gauge *name*."""
        key = _series_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def set_gauge_max(self, name: str, value: float, **labels: Any) -> None:
        """Raise gauge *name* to *value* if it is the largest seen so far.

        The local-maintenance half of the ``_peak`` gauge convention: name
        the gauge ``*_peak``, update it with this method, and
        :meth:`merge` will aggregate it by max across workers — so the
        merged value is the true fleet-wide peak, not whichever worker's
        delta folded last.
        """
        key = _series_key(name, labels)
        v = float(value)
        with self._lock:
            if v > self._gauges.get(key, float("-inf")):
                self._gauges[key] = v

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation of *value* into histogram *name*."""
        key = _series_key(name, labels)
        v = float(value)
        if math.isnan(v):
            return
        bucket = bisect_left(BUCKET_BOUNDS, v)
        with self._lock:
            counts, total, n = self._hists.get(
                key, ([0] * (len(BUCKET_BOUNDS) + 1), 0.0, 0)
            )
            counts = list(counts)
            counts[bucket] += 1
            self._hists[key] = (counts, total + v, n + 1)

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serialisable copy of the registry state."""
        with self._lock:
            return {
                "schema": METRICS_SCHEMA,
                "bounds": list(BUCKET_BOUNDS),
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: {"buckets": list(counts), "sum": total, "count": n}
                    for key, (counts, total, n) in self._hists.items()
                },
            }

    def merge(self, snap: Mapping) -> None:
        """Fold a snapshot (or delta) from another registry into this one.

        Counters and histogram buckets add.  Gauges follow a per-suffix
        policy keyed on the series name (the part before any labels):

        * ``*_peak`` gauges merge by **max** — N workers each reporting
          their local peak aggregate to the fleet-wide peak;
        * every other gauge takes the incoming value ("a gauge is the
          last level someone set"), which is correct for point-in-time
          levels but was silently wrong for peaks: whichever chunk's
          delta folded last used to win, discarding larger earlier peaks.

        Raises on a bucket-layout mismatch — merging histograms recorded
        against different bounds would be silent nonsense.
        """
        bounds = snap.get("bounds")
        if bounds is not None and tuple(bounds) != BUCKET_BOUNDS:
            raise ParameterError(
                "cannot merge metrics recorded against different histogram bounds"
            )
        with self._lock:
            for key, value in snap.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0.0) + float(value)
            for key, value in snap.get("gauges", {}).items():
                v = float(value)
                if key.partition("{")[0].endswith("_peak"):
                    if v > self._gauges.get(key, float("-inf")):
                        self._gauges[key] = v
                else:
                    self._gauges[key] = v
            for key, hist in snap.get("histograms", {}).items():
                incoming = list(hist["buckets"])
                counts, total, n = self._hists.get(
                    key, ([0] * (len(BUCKET_BOUNDS) + 1), 0.0, 0)
                )
                if len(incoming) != len(counts):
                    raise ParameterError(
                        f"histogram {key!r}: bucket count mismatch "
                        f"({len(incoming)} vs {len(counts)})"
                    )
                self._hists[key] = (
                    [a + b for a, b in zip(counts, incoming)],
                    total + float(hist.get("sum", 0.0)),
                    n + int(hist.get("count", 0)),
                )

    def reset(self) -> None:
        """Drop every recorded series."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


def snapshot_delta(before: Mapping, after: Mapping) -> dict:
    """What happened between two snapshots of the *same* registry.

    This is how a pool worker reports one chunk's metrics: snapshot before
    the chunk, snapshot after, ship the difference.  Works regardless of
    what the worker inherited at fork time or accumulated over earlier
    chunks, because inherited state subtracts out.  Counters and histogram
    buckets subtract (series that did not change are dropped); gauges keep
    the ``after`` value for gauges written between the snapshots.
    """
    delta: dict = {
        "schema": METRICS_SCHEMA,
        "bounds": list(after.get("bounds", BUCKET_BOUNDS)),
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    before_counters = before.get("counters", {})
    for key, value in after.get("counters", {}).items():
        diff = float(value) - float(before_counters.get(key, 0.0))
        if diff != 0.0:
            delta["counters"][key] = diff
    before_gauges = before.get("gauges", {})
    for key, value in after.get("gauges", {}).items():
        if key not in before_gauges or before_gauges[key] != value:
            delta["gauges"][key] = float(value)
    before_hists = before.get("histograms", {})
    for key, hist in after.get("histograms", {}).items():
        prev = before_hists.get(key)
        if prev is None:
            counts = list(hist["buckets"])
            total, n = float(hist["sum"]), int(hist["count"])
        else:
            counts = [a - b for a, b in zip(hist["buckets"], prev["buckets"])]
            total = float(hist["sum"]) - float(prev["sum"])
            n = int(hist["count"]) - int(prev["count"])
        if n != 0 or any(counts):
            delta["histograms"][key] = {"buckets": counts, "sum": total, "count": n}
    return delta


# ---------------------------------------------------------------------------
# Process-wide default registry
# ---------------------------------------------------------------------------

_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every convenience function uses."""
    return _registry


def inc(name: str, value: float = 1.0, **labels: Any) -> None:
    """Add *value* to counter *name* in the default registry."""
    _registry.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set gauge *name* in the default registry."""
    _registry.set_gauge(name, value, **labels)


def set_gauge_max(name: str, value: float, **labels: Any) -> None:
    """Raise peak gauge *name* in the default registry (``*_peak`` names)."""
    _registry.set_gauge_max(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record an observation into histogram *name* in the default registry."""
    _registry.observe(name, value, **labels)


def snapshot() -> dict:
    """Snapshot the default registry."""
    return _registry.snapshot()


def merge(snap: Mapping) -> None:
    """Merge a snapshot/delta into the default registry."""
    _registry.merge(snap)


def reset() -> None:
    """Clear the default registry (tests, or between CLI invocations)."""
    _registry.reset()


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------


def _prom_name(key: str) -> tuple[str, str]:
    """Split a series key into (sanitised metric name, label suffix)."""
    name, brace, labels = key.partition("{")
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not safe or safe[0].isdigit():
        safe = "_" + safe
    return safe, (brace + labels if brace else "")


def _family_header(
    lines: list[str], key: str, kind: str, prefix: str, seen: set[str]
) -> tuple[str, str]:
    """Emit ``# HELP`` / ``# TYPE`` once per family; return (name, labels).

    Help text comes from :data:`METRIC_HELP`, keyed on the raw series name
    (label sets of one family share a single header block, as the
    exposition format requires).
    """
    name, labels = _prom_name(key)
    if name not in seen:
        seen.add(name)
        help_text = METRIC_HELP.get(key.partition("{")[0])
        if help_text:
            lines.append(f"# HELP {prefix}{name} {help_text}")
        lines.append(f"# TYPE {prefix}{name} {kind}")
    return name, labels


def to_prometheus(snap: Mapping | None = None, *, prefix: str = "repro_") -> str:
    """Render a snapshot as Prometheus text exposition format (0.0.4).

    Dots in series names become underscores; histograms expand to
    cumulative ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``,
    so the output scrapes/pushes straight into a Prometheus stack.  Each
    family gets one ``# HELP`` line (from :data:`METRIC_HELP`, when the
    name is listed there) and one ``# TYPE`` line, before all its samples
    — the layout ``promtool`` and :mod:`repro.obs.promtext` expect.
    """
    if snap is None:
        snap = snapshot()
    lines: list[str] = []
    seen: set[str] = set()
    for key in sorted(snap.get("counters", {})):
        name, labels = _family_header(lines, key, "counter", prefix, seen)
        lines.append(f"{prefix}{name}{labels} {snap['counters'][key]:g}")
    for key in sorted(snap.get("gauges", {})):
        name, labels = _family_header(lines, key, "gauge", prefix, seen)
        lines.append(f"{prefix}{name}{labels} {snap['gauges'][key]:g}")
    bounds = snap.get("bounds", list(BUCKET_BOUNDS))
    for key in sorted(snap.get("histograms", {})):
        hist = snap["histograms"][key]
        name, labels = _family_header(lines, key, "histogram", prefix, seen)
        base_labels = labels[1:-1] if labels else ""
        cumulative = 0
        for bound, count in zip(bounds, hist["buckets"]):
            cumulative += count
            le = f'le="{bound:g}"'
            joined = f"{{{base_labels + ',' if base_labels else ''}{le}}}"
            lines.append(f"{prefix}{name}_bucket{joined} {cumulative}")
        # The overflow bucket: observations beyond BUCKET_BOUNDS[-1] land
        # in the final (implicit +Inf) slot, so the +Inf cumulative count
        # must equal _count even when overflow observations exist.
        cumulative += hist["buckets"][-1]
        joined = f"{{{base_labels + ',' if base_labels else ''}le=\"+Inf\"}}"
        lines.append(f"{prefix}{name}_bucket{joined} {cumulative}")
        lines.append(f"{prefix}{name}_sum{labels} {hist['sum']:g}")
        lines.append(f"{prefix}{name}_count{labels} {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def save_metrics(path: str | Path, snap: Mapping | None = None) -> Path:
    """Write a snapshot to *path*: Prometheus text for ``.prom``/``.txt``
    suffixes, pretty-printed JSON otherwise.  Returns the path."""
    path = Path(path)
    if snap is None:
        snap = snapshot()
    if path.suffix in (".prom", ".txt"):
        path.write_text(to_prometheus(snap), encoding="utf-8")
    else:
        path.write_text(
            json.dumps(snap, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return path
