"""Embedded HTTP telemetry plane: ``/metrics``, ``/progress``, ``/workers``.

A stdlib :class:`~http.server.ThreadingHTTPServer` running on a daemon
thread inside the coordinator process, enabled by
``ExecutionContext(telemetry_port=)`` / ``repro-sim --telemetry-port`` /
the ``REPRO_TELEMETRY_PORT`` environment variable.  Endpoints:

=================  ========================================================
``GET /healthz``   liveness: ``{"status": "ok", "pid": ..., "uptime_s": ...}``
``GET /metrics``   Prometheus text exposition of the always-on registry
                   (:func:`repro.obs.metrics.to_prometheus`), with
                   per-worker heartbeat-age gauges refreshed at scrape time
``GET /metrics.json``  the same registry as a JSON snapshot
``GET /progress``  live dispatch/sweep state from
                   :class:`repro.obs.progress.ProgressTracker`
``GET /workers``   tcp fleet health: heartbeat age, in-flight chunk,
                   chunks completed, throughput per worker
=================  ========================================================

Zero-cost when disabled: with no telemetry port configured, nothing in
this module runs — no thread, no socket, no import on the dispatch hot
path (:func:`repro.parallel.run_chunked` only imports it when the context
carries a port).  The server is read-only by design: a scrape renders
tracker/registry snapshots and never mutates dispatch state.

Shutdown is crash-safe by construction: the serve loop runs on a *daemon*
thread with daemon handler threads, so SIGKILL/SIGTERM tests and normal
interpreter exit never block on it; an :mod:`atexit` hook closes the
socket politely on clean exits, and a fork handler drops the inherited
listener in children so a worker never holds the coordinator's port open.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ParameterError

__all__ = [
    "TELEMETRY_ENV_VAR",
    "TelemetryServer",
    "active_telemetry",
    "default_telemetry_port",
    "ensure_telemetry",
    "start_telemetry",
    "stop_telemetry",
]

#: environment variable supplying the default telemetry port for any
#: context constructed without an explicit ``telemetry_port=`` (mirrors
#: ``REPRO_BACKEND`` / ``REPRO_TARGET_CI``).  ``0`` binds an ephemeral port.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY_PORT"


def default_telemetry_port() -> int | None:
    """``REPRO_TELEMETRY_PORT`` parsed and validated, else ``None`` (off)."""
    raw = os.environ.get(TELEMETRY_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        port = int(raw)
    except ValueError:
        raise ParameterError(
            f"{TELEMETRY_ENV_VAR} must be an integer port, got {raw!r}"
        ) from None
    return validate_port(port, source=TELEMETRY_ENV_VAR)


def validate_port(port: int, *, source: str = "telemetry_port") -> int:
    """Validate a TCP port (``0`` means "bind an ephemeral port")."""
    if isinstance(port, bool) or not isinstance(port, int):
        raise ParameterError(f"{source} must be an integer, got {port!r}")
    if not 0 <= port <= 65535:
        raise ParameterError(f"{source} must be in [0, 65535], got {port}")
    return port


class _Handler(BaseHTTPRequestHandler):
    """Route table for the telemetry endpoints (read-only, JSON/text)."""

    server_version = "repro-telemetry"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # a scrape must never write to the coordinator's stderr

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        from repro.obs import metrics as obs_metrics
        from repro.obs.progress import get_tracker

        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        tracker = get_tracker()
        try:
            if path == "/healthz":
                snap = tracker.snapshot()
                self._reply_json(
                    {"status": "ok", "pid": snap["pid"], "uptime_s": snap["uptime_s"]}
                )
            elif path == "/metrics":
                tracker.refresh_worker_gauges(obs_metrics.get_registry())
                body = obs_metrics.to_prometheus()
                self._reply(
                    body.encode("utf-8"),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/metrics.json":
                tracker.refresh_worker_gauges(obs_metrics.get_registry())
                self._reply_json(obs_metrics.snapshot())
            elif path == "/progress":
                self._reply_json(tracker.snapshot())
            elif path == "/workers":
                self._reply_json(tracker.workers_snapshot())
            else:
                self._reply_json(
                    {
                        "error": f"unknown path {path!r}",
                        "endpoints": [
                            "/healthz", "/metrics", "/metrics.json",
                            "/progress", "/workers",
                        ],
                    },
                    status=404,
                )
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def _reply_json(self, payload: dict, *, status: int = 200) -> None:
        self._reply(
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
            content_type="application/json",
            status=status,
        )

    def _reply(
        self, body: bytes, *, content_type: str, status: int = 200
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class TelemetryServer:
    """One bound telemetry endpoint: a ThreadingHTTPServer on a daemon thread."""

    def __init__(self, port: int = 0, host: str = "127.0.0.1") -> None:
        validate_port(port)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The actually bound port (resolved when constructed with ``0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.25},
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def drop(self) -> None:
        """Release the inherited socket fd without touching the serve loop.

        Fork-child path only: the child has no acceptor thread (fork copies
        just the calling thread), so a plain close is all that is needed to
        stop it holding the coordinator's port open.
        """
        self._closed = True
        try:
            self._httpd.server_close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Process-wide singleton
# ---------------------------------------------------------------------------

_server: TelemetryServer | None = None
_atexit_registered = False


def active_telemetry() -> TelemetryServer | None:
    """The running server, if any — ``None`` means telemetry is off."""
    return _server


def start_telemetry(port: int = 0, host: str = "127.0.0.1") -> TelemetryServer:
    """Start (or restart on a different port) the process-wide server."""
    global _server, _atexit_registered
    validate_port(port)
    if _server is not None:
        _server.close()
    _server = TelemetryServer(port, host).start()
    if not _atexit_registered:
        _atexit_registered = True
        atexit.register(stop_telemetry)
        if hasattr(os, "register_at_fork"):
            os.register_at_fork(after_in_child=_after_fork_in_child)
    return _server


def stop_telemetry() -> None:
    """Stop the process-wide server, if one is running (idempotent)."""
    global _server
    if _server is not None:
        _server.close()
        _server = None


def ensure_telemetry(port: int | None) -> TelemetryServer | None:
    """Idempotent entry point for dispatch: serve on *port* if requested.

    ``None`` is a no-op (telemetry stays off — the zero-cost path).  An
    already-running server is reused when *port* matches (``0`` matches any
    running server: it asked for "an ephemeral port" and one is bound);
    a different explicit port restarts the server there.
    """
    if port is None:
        return _server
    validate_port(port)
    if _server is not None and (port == 0 or port == _server.port):
        return _server
    return start_telemetry(port)


def _after_fork_in_child() -> None:
    global _server
    if _server is not None:
        _server.drop()
        _server = None
