"""High-level simulation entry points.

These wrappers assemble a policy + engine for each of the paper's
strategies, so experiment code reads like the paper:

>>> from repro.platform_model import CheckpointCosts
>>> from repro.core import restart_period
>>> costs = CheckpointCosts(checkpoint=60.0)
>>> T = restart_period(5 * 365 * 86400, costs.restart_checkpoint, 1000)
>>> rs = simulate_restart(mtbf=5 * 365 * 86400, n_pairs=1000, period=T,
...                       costs=costs, n_periods=10, n_runs=4, seed=1)
>>> rs.n_runs
4

Engine selection: every entry point accepts ``engine=`` (or honours the
``REPRO_ENGINE`` environment variable when the argument is omitted).  The
*restart* strategy defaults to the exact sampled fast path; every other
exponential strategy uses the lockstep engine; both accept
``engine="batch"`` for the struct-of-arrays per-phase engine
(:mod:`repro.simulation.batch` — 10-100x faster on failure-dense
workloads); trace and non-exponential inputs go through
:func:`simulate_with_source`.  Unknown engine names raise
:class:`~repro.exceptions.ParameterError` naming the valid set; a
``REPRO_ENGINE`` value that is a known engine but inapplicable to an entry
point falls back to that entry point's default, so one exported value can
steer a whole experiment without breaking its trace-driven legs.

Parallel execution: every entry point accepts ``n_jobs`` — either a worker
count or a full :class:`~repro.parallel.ExecutionContext` (to pin the
backend or chunk size for one call).  When set (or when a default context is
installed, or ``REPRO_JOBS`` is exported), the batch is split into
deterministic chunks and fanned out across worker processes by
:func:`repro.parallel.run_chunked`; ``n_jobs=1`` and ``n_jobs=8`` return
bit-identical :class:`RunSet`\\ s for the same seed.  Leaving ``n_jobs``
unset everywhere preserves the legacy single-batch seed stream.
"""

from __future__ import annotations

import os
from dataclasses import replace
from functools import partial

from repro.cache import cached_runset
from repro.exceptions import ParameterError
from repro.failures.generator import FailureSource, TraceFailureSource
from repro.failures.traces import FailureTrace
from repro.parallel import ExecutionContext, resolve_execution, run_chunked
from repro.platform_model.costs import CheckpointCosts
from repro.platform_model.machine import Platform
from repro.simulation.batch import BATCH_RNG_CONTRACT, simulate_batch
from repro.simulation.lockstep import LockstepConfig, simulate_lockstep
from repro.simulation.policies import (
    PeriodicPolicy,
    every_k_policy,
    nbound_policy,
    no_restart_policy,
    non_periodic_policy,
    restart_policy,
)
from repro.simulation.restart_on_failure import simulate_restart_on_failure
from repro.simulation.results import RunSet
from repro.simulation.sampled import simulate_restart_sampled
from repro.simulation.trace_engine import TraceEngineConfig, simulate_trace_runs
from repro.util.rng import SeedLike
from repro.util.validation import check_positive_int

__all__ = [
    "ENGINES",
    "ENGINE_ENV_VAR",
    "resolve_engine",
    "simulate_restart",
    "simulate_no_restart",
    "simulate_nbound",
    "simulate_every_k",
    "simulate_non_periodic",
    "simulate_no_replication",
    "simulate_partial_replication",
    "simulate_policy",
    "simulate_with_source",
    "simulate_with_trace",
    "simulate_restart_on_failure",
]

#: Every engine any entry point knows about; the universe ``REPRO_ENGINE``
#: values are validated against.
ENGINES = ("sampled", "lockstep", "batch", "trace")

#: Environment variable consulted when ``engine=`` is omitted; exported by
#: the CLI's ``--engine`` flag so worker processes inherit the choice.
ENGINE_ENV_VAR = "REPRO_ENGINE"


def resolve_engine(
    engine: str | None, *, valid: tuple[str, ...], default: str
) -> str:
    """Resolve an engine name from the argument or the environment.

    An explicit ``engine`` must belong to *valid* (the subset this entry
    point implements) or a :class:`ParameterError` names both the local and
    the global engine sets.  When ``engine`` is ``None``, a ``REPRO_ENGINE``
    value is honoured if it applies here — it must at least be a *known*
    engine, or the error names the environment variable — and otherwise the
    entry point's *default* is used.
    """
    if engine is not None:
        if engine not in valid:
            raise ParameterError(
                f"unknown engine {engine!r}; valid engines here: "
                f"{', '.join(valid)} (all engines: {', '.join(ENGINES)})"
            )
        return engine
    env = os.environ.get(ENGINE_ENV_VAR, "").strip()
    if env:
        if env not in ENGINES:
            raise ParameterError(
                f"{ENGINE_ENV_VAR}={env!r} is not a known engine; "
                f"valid engines: {', '.join(ENGINES)}"
            )
        if env in valid:
            return env
    return default


# ---------------------------------------------------------------------------
# Chunk task adapters (module-level so ``functools.partial`` of them pickles
# for the process backend of :mod:`repro.parallel`).  Each adapter carries
# its engine identity — and, for the batch engine, the pinned RNG-contract
# version — as attributes that :func:`repro.cache.keys.fingerprint_task`
# folds into cache keys, so results from different engines (or different
# batch contracts) can never cross-serve.
# ---------------------------------------------------------------------------


def _sampled_chunk(params: dict, n_runs: int, seed: SeedLike) -> RunSet:
    return simulate_restart_sampled(n_runs=n_runs, seed=seed, **params)


def _lockstep_chunk(config: LockstepConfig, n_runs: int, seed: SeedLike) -> RunSet:
    return simulate_lockstep(replace(config, n_runs=n_runs), seed=seed)


def _batch_chunk(config: LockstepConfig, n_runs: int, seed: SeedLike) -> RunSet:
    return simulate_batch(replace(config, n_runs=n_runs), seed=seed)


def _trace_chunk(config: TraceEngineConfig, n_runs: int, seed: SeedLike) -> RunSet:
    return simulate_trace_runs(replace(config, n_runs=n_runs), seed=seed)


_sampled_chunk.__engine__ = "sampled"
_lockstep_chunk.__engine__ = "lockstep"
_batch_chunk.__engine__ = "batch"
_batch_chunk.__rng_contract__ = BATCH_RNG_CONTRACT
_trace_chunk.__engine__ = "trace"


def _cached_batch(task: partial, n_runs: int, seed: SeedLike, compute) -> RunSet:
    """Serve a legacy single-batch simulation through the ambient cache.

    The legacy (non-chunked) path must keep its historical seed stream, so
    caching wraps the whole batch: the first run computes and stores it
    unchanged, a re-run with the same task/config/seed is served from disk
    bit-identically (see :mod:`repro.cache`).
    """
    return cached_runset(
        "batch",
        task=task,
        layout={"mode": "single-batch", "n_runs": n_runs},
        seed=seed,
        compute=compute,
    )


#: engine name -> (chunk adapter, direct single-batch function) for the
#: engines that share LockstepConfig.
_CONFIG_ENGINES = {
    "lockstep": (_lockstep_chunk, simulate_lockstep),
    "batch": (_batch_chunk, simulate_batch),
}


def _run_config(
    config: LockstepConfig, seed: SeedLike, n_jobs, engine: str = "lockstep"
) -> RunSet:
    chunk_fn, direct = _CONFIG_ENGINES[engine]
    context = resolve_execution(n_jobs)
    task = partial(chunk_fn, config)
    if context is None:
        return _cached_batch(
            task, config.n_runs, seed, lambda: direct(config, seed=seed)
        )
    return run_chunked(task, n_runs=config.n_runs, seed=seed, context=context)


def _run_trace(config: TraceEngineConfig, seed: SeedLike, n_jobs) -> RunSet:
    context = resolve_execution(n_jobs)
    task = partial(_trace_chunk, config)
    if context is None:
        return _cached_batch(
            task, config.n_runs, seed, lambda: simulate_trace_runs(config, seed=seed)
        )
    return run_chunked(task, n_runs=config.n_runs, seed=seed, context=context)


def simulate_restart(
    *,
    mtbf: float,
    n_pairs: int,
    period: float,
    costs: CheckpointCosts,
    n_periods: int | None = None,
    work_target: float | None = None,
    n_runs: int = 100,
    engine: str | None = None,
    failures_during_checkpoint: bool = True,
    seed: SeedLike = None,
    n_jobs: int | ExecutionContext | None = None,
) -> RunSet:
    """Simulate the paper's *restart* strategy (restart at every checkpoint).

    ``engine`` is ``"sampled"`` (exact closed-form sampling, the default),
    ``"batch"`` (struct-of-arrays per-phase engine, fastest at scale) or
    ``"lockstep"`` (event-driven, used for cross-validation); ``None``
    consults ``REPRO_ENGINE``.  The sampled engine requires ``n_periods``
    termination.  ``n_jobs`` fans the replications out across worker
    processes (see :mod:`repro.parallel`); pass an
    :class:`~repro.parallel.ExecutionContext` instead of an int to control
    the backend and chunk size for this call.
    """
    n_runs = check_positive_int("n_runs", n_runs)
    engine = resolve_engine(
        engine, valid=("sampled", "lockstep", "batch"), default="sampled"
    )
    if engine == "sampled":
        if n_periods is None:
            raise ParameterError("the sampled engine requires n_periods termination")
        if work_target is not None:
            # Mirror LockstepConfig instead of silently ignoring one mode.
            raise ParameterError(
                "set exactly one of n_periods / work_target: the sampled "
                "engine supports only n_periods termination "
                "(use engine='lockstep' for work_target)"
            )
        params = dict(
            mtbf=mtbf,
            n_pairs=n_pairs,
            period=period,
            costs=costs,
            n_periods=n_periods,
            failures_during_checkpoint=failures_during_checkpoint,
        )
        context = resolve_execution(n_jobs)
        task = partial(_sampled_chunk, params)
        if context is None:
            return _cached_batch(
                task,
                n_runs,
                seed,
                lambda: simulate_restart_sampled(n_runs=n_runs, seed=seed, **params),
            )
        return run_chunked(task, n_runs=n_runs, seed=seed, context=context)
    policy = restart_policy(period, costs)
    return simulate_policy(
        policy,
        mtbf=mtbf,
        n_pairs=n_pairs,
        costs=costs,
        n_periods=n_periods,
        work_target=work_target,
        n_runs=n_runs,
        engine=engine,
        failures_during_checkpoint=failures_during_checkpoint,
        seed=seed,
        n_jobs=n_jobs,
    )


def simulate_no_restart(
    *,
    mtbf: float,
    n_pairs: int,
    period: float,
    costs: CheckpointCosts,
    n_periods: int | None = None,
    work_target: float | None = None,
    n_runs: int = 100,
    engine: str | None = None,
    failures_during_checkpoint: bool = True,
    seed: SeedLike = None,
    n_jobs: int | ExecutionContext | None = None,
) -> RunSet:
    """Simulate prior work's *no-restart* strategy."""
    policy = no_restart_policy(period, costs)
    return simulate_policy(
        policy,
        mtbf=mtbf,
        n_pairs=n_pairs,
        costs=costs,
        n_periods=n_periods,
        work_target=work_target,
        n_runs=n_runs,
        engine=engine,
        failures_during_checkpoint=failures_during_checkpoint,
        seed=seed,
        n_jobs=n_jobs,
    )


def simulate_nbound(
    *,
    mtbf: float,
    n_pairs: int,
    period: float,
    costs: CheckpointCosts,
    n_bound: int,
    n_periods: int | None = None,
    n_runs: int = 100,
    engine: str | None = None,
    restart_wave_factor: float = 2.0,
    failures_during_checkpoint: bool = True,
    seed: SeedLike = None,
    n_jobs: int | ExecutionContext | None = None,
) -> RunSet:
    """Simulate the Section 7.7 extension: restart after >= n_bound deaths."""
    policy = nbound_policy(period, costs, n_bound, restart_wave_factor=restart_wave_factor)
    return simulate_policy(
        policy,
        mtbf=mtbf,
        n_pairs=n_pairs,
        costs=costs,
        n_periods=n_periods,
        n_runs=n_runs,
        engine=engine,
        failures_during_checkpoint=failures_during_checkpoint,
        seed=seed,
        n_jobs=n_jobs,
    )


def simulate_every_k(
    *,
    mtbf: float,
    n_pairs: int,
    period: float,
    costs: CheckpointCosts,
    k: int,
    n_periods: int | None = None,
    n_runs: int = 100,
    engine: str | None = None,
    failures_during_checkpoint: bool = True,
    seed: SeedLike = None,
    n_jobs: int | ExecutionContext | None = None,
) -> RunSet:
    """Simulate the future-work variant: rejuvenate at every k-th checkpoint."""
    policy = every_k_policy(period, costs, k)
    return simulate_policy(
        policy,
        mtbf=mtbf,
        n_pairs=n_pairs,
        costs=costs,
        n_periods=n_periods,
        n_runs=n_runs,
        engine=engine,
        failures_during_checkpoint=failures_during_checkpoint,
        seed=seed,
        n_jobs=n_jobs,
    )


def simulate_non_periodic(
    *,
    mtbf: float,
    n_pairs: int,
    healthy_period: float,
    degraded_period: float,
    costs: CheckpointCosts,
    n_periods: int | None = None,
    work_target: float | None = None,
    n_runs: int = 100,
    engine: str | None = None,
    failures_during_checkpoint: bool = True,
    seed: SeedLike = None,
    n_jobs: int | ExecutionContext | None = None,
) -> RunSet:
    """Simulate Figure 2's non-periodic no-restart variant (T1 / T2)."""
    policy = non_periodic_policy(healthy_period, degraded_period, costs)
    return simulate_policy(
        policy,
        mtbf=mtbf,
        n_pairs=n_pairs,
        costs=costs,
        n_periods=n_periods,
        work_target=work_target,
        n_runs=n_runs,
        engine=engine,
        failures_during_checkpoint=failures_during_checkpoint,
        seed=seed,
        n_jobs=n_jobs,
    )


def simulate_no_replication(
    *,
    mtbf: float,
    n_procs: int,
    period: float,
    costs: CheckpointCosts,
    n_periods: int | None = None,
    work_target: float | None = None,
    n_runs: int = 100,
    engine: str | None = None,
    failures_during_checkpoint: bool = True,
    seed: SeedLike = None,
    n_jobs: int | ExecutionContext | None = None,
) -> RunSet:
    """Simulate plain checkpoint/restart without replication."""
    n_runs = check_positive_int("n_runs", n_runs)
    engine = resolve_engine(engine, valid=("lockstep", "batch"), default="lockstep")
    policy = no_restart_policy(period, costs)
    config = LockstepConfig(
        mtbf=mtbf,
        n_pairs=0,
        n_standalone=n_procs,
        policy=policy,
        costs=costs,
        n_periods=n_periods,
        work_target=work_target,
        n_runs=n_runs,
        failures_during_checkpoint=failures_during_checkpoint,
    )
    rs = _run_config(config, seed, n_jobs, engine)
    rs.label = f"NoReplication(T={period:g})"
    return rs


def simulate_partial_replication(
    *,
    mtbf: float,
    platform: Platform,
    period: float,
    costs: CheckpointCosts,
    restart_at_checkpoint: bool,
    n_periods: int | None = None,
    work_target: float | None = None,
    n_runs: int = 100,
    engine: str | None = None,
    failures_during_checkpoint: bool = True,
    seed: SeedLike = None,
    n_jobs: int | ExecutionContext | None = None,
) -> RunSet:
    """Simulate a partially replicated platform (paper Section 7.6).

    ``platform`` supplies the pairs/standalone split (e.g.
    ``Platform.partially_replicated(200_000, mu, 0.9)`` for Partial90).
    A failure on any standalone processor is immediately fatal; pairs behave
    as under full replication.  ``restart_at_checkpoint`` selects the
    restart or no-restart flavour for the replicated part.
    """
    n_runs = check_positive_int("n_runs", n_runs)
    engine = resolve_engine(engine, valid=("lockstep", "batch"), default="lockstep")
    policy = (
        restart_policy(period, costs)
        if restart_at_checkpoint
        else no_restart_policy(period, costs)
    )
    config = LockstepConfig(
        mtbf=mtbf,
        n_pairs=platform.n_pairs,
        n_standalone=platform.n_standalone,
        policy=policy,
        costs=costs,
        n_periods=n_periods,
        work_target=work_target,
        n_runs=n_runs,
        failures_during_checkpoint=failures_during_checkpoint,
    )
    rs = _run_config(config, seed, n_jobs, engine)
    frac = int(round(platform.replicated_fraction * 100))
    rs.label = f"Partial{frac}(T={period:g})"
    return rs


def simulate_policy(
    policy: PeriodicPolicy,
    *,
    mtbf: float,
    n_pairs: int,
    costs: CheckpointCosts,
    n_periods: int | None = None,
    work_target: float | None = None,
    n_runs: int = 100,
    n_standalone: int = 0,
    engine: str | None = None,
    failures_during_checkpoint: bool = True,
    seed: SeedLike = None,
    n_jobs: int | ExecutionContext | None = None,
) -> RunSet:
    """Simulate an arbitrary :class:`PeriodicPolicy`.

    ``engine`` is ``"lockstep"`` (event-driven, the default) or ``"batch"``
    (struct-of-arrays per-phase engine); ``None`` consults ``REPRO_ENGINE``.
    """
    n_runs = check_positive_int("n_runs", n_runs)
    engine = resolve_engine(engine, valid=("lockstep", "batch"), default="lockstep")
    config = LockstepConfig(
        mtbf=mtbf,
        n_pairs=n_pairs,
        n_standalone=n_standalone,
        policy=policy,
        costs=costs,
        n_periods=n_periods,
        work_target=work_target,
        n_runs=n_runs,
        failures_during_checkpoint=failures_during_checkpoint,
    )
    return _run_config(config, seed, n_jobs, engine)


def simulate_with_source(
    policy: PeriodicPolicy,
    source: FailureSource,
    *,
    n_pairs: int,
    costs: CheckpointCosts,
    n_periods: int | None = None,
    work_target: float | None = None,
    n_runs: int = 100,
    n_standalone: int = 0,
    engine: str | None = None,
    failures_during_checkpoint: bool = True,
    seed: SeedLike = None,
    n_jobs: int | ExecutionContext | None = None,
) -> RunSet:
    """Simulate a policy against an arbitrary failure source (general engine).

    Only the trace engine can replay arbitrary failure sources, so
    ``engine`` accepts nothing else; an exported ``REPRO_ENGINE`` naming a
    different (known) engine is ignored here.
    """
    n_runs = check_positive_int("n_runs", n_runs)
    resolve_engine(engine, valid=("trace",), default="trace")
    config = TraceEngineConfig(
        source=source,
        n_pairs=n_pairs,
        n_standalone=n_standalone,
        policy=policy,
        costs=costs,
        n_periods=n_periods,
        work_target=work_target,
        n_runs=n_runs,
        failures_during_checkpoint=failures_during_checkpoint,
    )
    return _run_trace(config, seed, n_jobs)


def simulate_with_trace(
    policy: PeriodicPolicy,
    trace: FailureTrace,
    *,
    n_procs: int,
    n_groups: int,
    costs: CheckpointCosts,
    n_periods: int | None = None,
    work_target: float | None = None,
    n_runs: int = 100,
    engine: str | None = None,
    failures_during_checkpoint: bool = True,
    seed: SeedLike = None,
    n_jobs: int | ExecutionContext | None = None,
) -> RunSet:
    """Replay a failure trace with the paper's group methodology.

    The platform is fully replicated (``n_procs`` must be even); the trace
    is split into ``n_groups`` independently-rotated, *pair-aligned* group
    streams (see :func:`repro.failures.traces.platform_failure_stream` —
    a process and its replica share a trace replay, so the trace's failure
    cascades can actually interrupt the application).
    """
    if n_procs % 2 != 0:
        raise ParameterError(f"full replication requires an even n_procs, got {n_procs}")
    source = TraceFailureSource(trace, n_procs, n_groups, n_pairs=n_procs // 2)
    return simulate_with_source(
        policy,
        source,
        n_pairs=n_procs // 2,
        costs=costs,
        n_periods=n_periods,
        work_target=work_target,
        n_runs=n_runs,
        engine=engine,
        failures_during_checkpoint=failures_during_checkpoint,
        seed=seed,
        n_jobs=n_jobs,
    )
