"""Vectorised Monte-Carlo engine for IID exponential failures.

Simulates many independent runs *in lockstep*: one NumPy-vectorised loop
iteration advances every still-active run to its next event (failure, work
completion or checkpoint completion).  This keeps the per-event cost at a
few array operations regardless of platform size, which is what makes the
paper's 200,000-processor, 100-period, many-run experiments feasible on a
laptop.

Correctness rests on two classical reductions, both exact for exponential
failures:

1. **Constant-rate superposition with dead-slot absorption.**  Failures are
   drawn from a Poisson process of rate ``N lambda`` striking one of the
   ``N`` processor *slots* uniformly; an event hitting an already-dead
   processor is ignored.  Because the exponential is memoryless, ignoring
   those events reproduces exactly the dynamics where only live processors
   fail — and it keeps the event rate identical across runs, enabling the
   lockstep.

2. **Memoryless discard at phase boundaries.**  When the next drawn failure
   falls beyond the end of the current phase (work segment or checkpoint),
   the leftover exponential can be discarded and redrawn in the next
   iteration without biasing the process.

The engine handles every periodic policy of
:mod:`repro.simulation.policies`, full/partial/no replication, optional
failures during checkpoints, downtime and recovery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError, SimulationError
from repro.obs import manifest as _obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.platform_model.costs import CheckpointCosts
from repro.simulation.policies import PeriodicPolicy
from repro.simulation.results import RunSet
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive, check_positive_int

__all__ = ["LockstepConfig", "simulate_lockstep"]

_WORK = 0
_CKPT = 1


@dataclass(frozen=True)
class LockstepConfig:
    """Configuration of a lockstep simulation batch.

    Parameters
    ----------
    mtbf:
        Individual processor MTBF (seconds).
    n_pairs, n_standalone:
        Platform layout: ``b`` replicated pairs plus standalone processors
        (``n_pairs=0`` models a platform without replication; both nonzero
        model partial replication).
    policy:
        The periodic strategy to simulate.
    costs:
        Downtime/recovery parameters (checkpoint costs come from *policy*).
    n_periods:
        Stop each run after this many completed periods (the paper uses
        100), or ``None`` when using *work_target*.
    work_target:
        Stop each run once this much work has been checkpointed; used for
        fixed-work time-to-solution comparisons (Figure 2).
    n_runs:
        Number of independent replications.
    failures_during_checkpoint:
        Whether failures can strike while checkpointing (the analysis
        assumes not; a real platform — and this engine by default — says
        yes).
    """

    mtbf: float
    n_pairs: int
    policy: PeriodicPolicy
    costs: CheckpointCosts
    n_runs: int
    n_periods: int | None = None
    work_target: float | None = None
    n_standalone: int = 0
    failures_during_checkpoint: bool = True

    def __post_init__(self) -> None:
        check_positive("mtbf", self.mtbf)
        if self.n_pairs < 0 or self.n_standalone < 0:
            raise ParameterError("n_pairs and n_standalone must be non-negative")
        if self.n_pairs == 0 and self.n_standalone == 0:
            raise ParameterError("the platform needs at least one processor")
        check_positive_int("n_runs", self.n_runs)
        if (self.n_periods is None) == (self.work_target is None):
            raise ParameterError("set exactly one of n_periods / work_target")
        if self.n_periods is not None:
            check_positive_int("n_periods", self.n_periods)
        if self.work_target is not None:
            check_positive("work_target", self.work_target)

    @property
    def n_slots(self) -> int:
        return 2 * self.n_pairs + self.n_standalone


def simulate_lockstep(config: LockstepConfig, *, seed: SeedLike = None) -> RunSet:
    """Run a batch of independent simulations; see :class:`LockstepConfig`.

    Returns a :class:`~repro.simulation.results.RunSet` with one entry per
    run.  A single NumPy generator drives all runs; reproducibility is at
    batch granularity (same seed + same config = same batch).
    """
    t_start = time.monotonic()
    rng = as_generator(seed)
    n = config.n_runs
    policy = config.policy
    n_slots = config.n_slots
    mean_gap = config.mtbf / n_slots
    downtime_recovery = config.costs.downtime + config.costs.recovery
    _guard_can_progress(config)

    # Per-run state -----------------------------------------------------
    phase = np.full(n, _WORK, dtype=np.int8)
    pos = np.zeros(n)
    degraded = np.zeros(n, dtype=np.int64)
    seg_len = policy.work_length(degraded).astype(float)
    work_len = np.zeros(n)  # executed work of the current attempt
    restart_flag = np.zeros(n, dtype=bool)
    ckpt_counter = np.zeros(n, dtype=np.int64)  # checkpoints since rejuvenation
    active = np.ones(n, dtype=bool)

    # Accumulators ------------------------------------------------------
    total = np.zeros(n)
    useful = np.zeros(n)
    ckpt_time = np.zeros(n)
    rec_time = np.zeros(n)
    wasted = np.zeros(n)
    n_failures = np.zeros(n, dtype=np.int64)
    n_fatal = np.zeros(n, dtype=np.int64)
    n_ckpt = np.zeros(n, dtype=np.int64)
    n_restarts = np.zeros(n, dtype=np.int64)
    periods_done = np.zeros(n, dtype=np.int64)
    max_degraded = np.zeros(n, dtype=np.int64)

    # Hard cap on iterations: generous bound on events per run.
    max_iter = _iteration_budget(config)
    n_iterations = 0
    n_events = 0

    for _ in range(max_iter):
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            break
        n_iterations += 1
        n_events += int(idx.size)
        dt = rng.exponential(mean_gap, idx.size)
        t_next = pos[idx] + dt
        length = seg_len[idx]
        in_ckpt = phase[idx] == _CKPT

        hit = t_next < length
        if not config.failures_during_checkpoint:
            hit &= ~in_ckpt

        # --- failures inside the current phase --------------------------
        f_loc = np.nonzero(hit)[0]
        if f_loc.size:
            f_idx = idx[f_loc]
            f_t = t_next[f_loc]
            total[f_idx] += f_t - pos[f_idx]
            pos[f_idx] = f_t

            u = rng.random(f_idx.size)
            d = degraded[f_idx].astype(float)
            p_ignore = d / n_slots
            p_fatal = (d + config.n_standalone) / n_slots
            fatal = (u >= p_ignore) & (u < p_ignore + p_fatal)
            degrade = u >= p_ignore + p_fatal  # hits a fully-alive pair

            live_hit = fatal | degrade
            n_failures[f_idx[live_hit]] += 1

            g_idx = f_idx[degrade]
            if g_idx.size:
                degraded[g_idx] += 1
                max_degraded[g_idx] = np.maximum(max_degraded[g_idx], degraded[g_idx])
                if policy.replan_on_degrade:
                    # First failure of a healthy segment re-plans the next
                    # checkpoint to degraded_period after the failure.
                    first = (degraded[g_idx] == 1) & (phase[g_idx] == _WORK)
                    r_idx = g_idx[first]
                    seg_len[r_idx] = pos[r_idx] + policy.degraded_period

            c_idx = f_idx[fatal]
            if c_idx.size:
                n_fatal[c_idx] += 1
                in_c = phase[c_idx] == _CKPT
                lost = np.where(in_c, work_len[c_idx] + pos[c_idx], pos[c_idx])
                wasted[c_idx] += lost
                total[c_idx] += downtime_recovery
                rec_time[c_idx] += downtime_recovery
                # Crash rejuvenation: everything restarts from the last
                # valid checkpoint with a fresh platform.
                n_restarts[c_idx] += degraded[c_idx] + 1  # dead halves + victim
                degraded[c_idx] = 0
                ckpt_counter[c_idx] = 0
                phase[c_idx] = _WORK
                pos[c_idx] = 0.0
                seg_len[c_idx] = policy.work_length(degraded[c_idx])

        # --- phase completions ------------------------------------------
        done_loc = np.nonzero(~hit)[0]
        if done_loc.size:
            d_idx = idx[done_loc]
            total[d_idx] += seg_len[d_idx] - pos[d_idx]
            was_work = phase[d_idx] == _WORK

            # Work segment completed: enter (or skip through) checkpoint.
            w_idx = d_idx[was_work]
            if w_idx.size:
                work_len[w_idx] = seg_len[w_idx]
                cost, restarts = policy.checkpoint_decision(
                    degraded[w_idx], ckpt_counter[w_idx]
                )
                phase[w_idx] = _CKPT
                pos[w_idx] = 0.0
                seg_len[w_idx] = cost
                restart_flag[w_idx] = restarts
                if not config.failures_during_checkpoint:
                    # Checkpoints are failure-free: complete them instantly.
                    total[w_idx] += cost
                    _complete_checkpoint(
                        w_idx, policy, degraded, phase, pos, seg_len, work_len,
                        restart_flag, ckpt_counter, useful, ckpt_time, n_ckpt,
                        n_restarts, periods_done,
                    )

            # Checkpoint completed.
            k_idx = d_idx[~was_work]
            if k_idx.size:
                _complete_checkpoint(
                    k_idx, policy, degraded, phase, pos, seg_len, work_len,
                    restart_flag, ckpt_counter, useful, ckpt_time, n_ckpt,
                    n_restarts, periods_done,
                )

        # --- termination -------------------------------------------------
        if config.n_periods is not None:
            np.logical_and(active, periods_done < config.n_periods, out=active)
        else:
            np.logical_and(active, useful < config.work_target, out=active)
    else:
        raise SimulationError(
            "lockstep engine exceeded its iteration budget; the configuration "
            "likely cannot make progress (period shorter than failure gaps)"
        )

    # metric points are always-on (batch granularity, merged back from
    # pool workers by run_chunked); JSONL emission stays trace-gated
    obs_metrics.inc("engine.lockstep.batches")
    obs_metrics.inc("engine.lockstep.runs", n)
    obs_metrics.inc("engine.lockstep.iterations", n_iterations)
    obs_metrics.inc("engine.lockstep.failures", int(n_failures.sum()))
    if obs.enabled():
        obs.event(
            "engine.lockstep",
            runs=n,
            iterations=n_iterations,
            events=n_events,
            failures=int(n_failures.sum()),
            fatal=int(n_fatal.sum()),
            periods=int(periods_done.sum()),
        )
        obs.count("engine.lockstep.iterations", n_iterations)
        obs.count("engine.lockstep.failures", int(n_failures.sum()))
    return RunSet(
        total_time=total,
        useful_time=useful,
        checkpoint_time=ckpt_time,
        recovery_time=rec_time,
        wasted_time=wasted,
        n_failures=n_failures,
        n_fatal=n_fatal,
        n_checkpoints=n_ckpt,
        n_proc_restarts=n_restarts,
        max_degraded=max_degraded,
        label=policy.name,
        meta={
            "mtbf": config.mtbf,
            "n_pairs": config.n_pairs,
            "n_standalone": config.n_standalone,
            "engine": "lockstep",
            "manifest": _obs_manifest.RunManifest(
                label=policy.name,
                seed=_obs_manifest.seed_provenance(rng),
                config={
                    "mtbf": config.mtbf,
                    "n_pairs": config.n_pairs,
                    "n_standalone": config.n_standalone,
                    "policy": policy.name,
                    "n_runs": config.n_runs,
                    "n_periods": config.n_periods,
                    "work_target": config.work_target,
                    "failures_during_checkpoint": config.failures_during_checkpoint,
                },
                execution={"engine": "lockstep"},
                timings={"total_s": time.monotonic() - t_start},
            ).to_dict(),
        },
    )


def _complete_checkpoint(
    k_idx, policy, degraded, phase, pos, seg_len, work_len, restart_flag,
    ckpt_counter, useful, ckpt_time, n_ckpt, n_restarts, periods_done,
) -> None:
    """Apply checkpoint-completion bookkeeping for runs *k_idx* (in place)."""
    ckpt_time[k_idx] += seg_len[k_idx]
    n_ckpt[k_idx] += 1
    useful[k_idx] += work_len[k_idx]
    periods_done[k_idx] += 1
    restarted = restart_flag[k_idx]
    rest = k_idx[restarted]
    if rest.size:
        n_restarts[rest] += degraded[rest]
        degraded[rest] = 0
        ckpt_counter[rest] = 0
    plain = k_idx[~restarted]
    if plain.size:
        ckpt_counter[plain] += 1
    phase[k_idx] = _WORK
    pos[k_idx] = 0.0
    seg_len[k_idx] = policy.work_length(degraded[k_idx])
    restart_flag[k_idx] = False


def _guard_can_progress(config: LockstepConfig) -> None:
    """Fail fast on configurations that (almost) cannot complete a period.

    The success probability of one attempt from a fresh platform is the
    survival of the paired part times the survival of the standalone part
    over the work+checkpoint exposure.  Below 1e-9, the expected number of
    attempts per period exceeds a billion: raise instead of spinning.
    """
    import math

    from repro.core.mtti import interruption_survival

    policy = config.policy
    exposure = (
        min(policy.period, policy.degraded_period or policy.period)
        + policy.checkpoint_cost
    )
    p_success = 1.0
    if config.n_pairs > 0:
        p_success *= float(interruption_survival(exposure, config.mtbf, config.n_pairs))
    if config.n_standalone > 0:
        p_success *= math.exp(-config.n_standalone * exposure / config.mtbf)
    if p_success < 1e-9:
        raise SimulationError(
            f"configuration cannot progress: one period succeeds with "
            f"probability ~{p_success:.1e} (period too long for this "
            f"platform's failure rate)"
        )


def _iteration_budget(config: LockstepConfig) -> int:
    """Generous upper bound on lockstep iterations for one batch.

    Each iteration consumes, per active run, either one failure event or one
    phase transition.  We bound expected failures from the event rate and an
    over-estimated run duration, add transitions, then scale by a wide
    safety factor to keep the budget a true backstop rather than a limit.
    """
    policy = config.policy
    period = min(policy.period, policy.degraded_period or policy.period)
    n_periods = (
        config.n_periods
        if config.n_periods is not None
        else int(np.ceil(config.work_target / period)) + 1
    )
    ckpt = max(policy.checkpoint_cost, policy.restart_wave_cost)
    base_duration = n_periods * (policy.period + ckpt + config.costs.downtime + config.costs.recovery)
    event_rate = config.n_slots / config.mtbf
    expected_events = base_duration * event_rate
    # Allow for re-execution storms: inflate both events and transitions,
    # but keep a hard ceiling — _guard_can_progress has already rejected
    # configurations that would genuinely need more.
    budget = int(50 * (expected_events + 2 * n_periods) + 10_000)
    return min(budget, 20_000_000)
