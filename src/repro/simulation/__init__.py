"""Monte-Carlo simulation of checkpoint/replication strategies.

Four engines with identical semantics:

* :mod:`~repro.simulation.sampled` — exact closed-form sampling for the
  *restart* strategy under exponential failures;
* :mod:`~repro.simulation.batch` — struct-of-arrays engine resolving one
  whole phase (or period) per array operation for every periodic policy
  under exponential failures (fastest at scale);
* :mod:`~repro.simulation.lockstep` — vectorised event-driven engine for
  every periodic policy under exponential failures (the semantic
  reference);
* :mod:`~repro.simulation.trace_engine` — general engine replaying
  explicit failure events (log traces, non-exponential renewal processes).

Use the wrappers in :mod:`~repro.simulation.runner` (``engine=`` /
``REPRO_ENGINE`` select the engine) unless you need engine-level control.
"""

from repro.simulation.batch import BATCH_RNG_CONTRACT, BatchConfig, simulate_batch
from repro.simulation.lockstep import LockstepConfig, simulate_lockstep
from repro.simulation.metrics import (
    IOPressure,
    energy_from_runs,
    io_pressure,
    time_to_solution_from_runs,
)
from repro.simulation.policies import (
    PeriodicPolicy,
    every_k_policy,
    nbound_policy,
    no_restart_policy,
    non_periodic_policy,
    restart_policy,
)
from repro.simulation.restart_on_failure import simulate_restart_on_failure
from repro.simulation.results import OverheadSummary, RunSet
from repro.simulation.runner import (
    ENGINE_ENV_VAR,
    ENGINES,
    resolve_engine,
    simulate_every_k,
    simulate_nbound,
    simulate_no_replication,
    simulate_no_restart,
    simulate_non_periodic,
    simulate_partial_replication,
    simulate_policy,
    simulate_restart,
    simulate_with_source,
    simulate_with_trace,
)
from repro.simulation.sampled import simulate_restart_sampled
from repro.simulation.trace_engine import TraceEngineConfig, simulate_trace_runs

__all__ = [
    "RunSet",
    "OverheadSummary",
    "PeriodicPolicy",
    "restart_policy",
    "no_restart_policy",
    "nbound_policy",
    "non_periodic_policy",
    "every_k_policy",
    "LockstepConfig",
    "simulate_lockstep",
    "BATCH_RNG_CONTRACT",
    "BatchConfig",
    "simulate_batch",
    "ENGINES",
    "ENGINE_ENV_VAR",
    "resolve_engine",
    "simulate_restart_sampled",
    "TraceEngineConfig",
    "simulate_trace_runs",
    "simulate_restart",
    "simulate_no_restart",
    "simulate_nbound",
    "simulate_every_k",
    "simulate_non_periodic",
    "simulate_no_replication",
    "simulate_partial_replication",
    "simulate_policy",
    "simulate_with_source",
    "simulate_with_trace",
    "simulate_restart_on_failure",
    "IOPressure",
    "io_pressure",
    "time_to_solution_from_runs",
    "energy_from_runs",
]
