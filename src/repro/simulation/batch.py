"""Struct-of-arrays batch engine: one array operation per *phase*, not per event.

The lockstep engine advances every run to its next failure event; at paper
scale (200,000 processors, MTBF of a few years) a single period contains
tens to hundreds of platform failures, so simulating 100 periods costs
thousands of vectorised loop iterations.  This engine removes the per-event
loop entirely: each iteration resolves one whole *phase* (a work segment or
a checkpoint wave) for every active run with a handful of whole-array
operations over struct-of-arrays state vectors — work done, period phase,
degraded-pair counts, pending fatal-failure times.

Per-phase sampling is exact for IID exponential failures.  From a state
with ``d`` degraded pairs and ``s`` standalone processors, the first
*fatal* failure inside a phase is the minimum of two independent times:

* ``tau_lin ~ Exp((d + s) * lambda)`` — a degraded pair's survivor or a
  standalone processor dies (constant hazard);
* ``tau_pair`` — the first of the ``b - d`` healthy pairs loses *both*
  members, with survival ``(1 - (1 - e^{-lambda t})^2)^(b-d)`` — sampled
  by inverse transform exactly like :func:`repro.core.mtti.
  sample_time_to_interruption`.

If ``min(tau_lin, tau_pair)`` falls beyond the phase, the phase completes
and the number of pairs that silently degraded during it is a Binomial
draw with the closed-form conditional probability
:func:`repro.simulation.sampled._degraded_probability_given_not_dead`.
If it falls inside, the run crashes there; the failures observed in the
doomed phase are recovered the same way (Binomial over the surviving
healthy pairs, plus one or two hits for the fatal component itself).
Either way, an arbitrarily failure-dense phase costs *one* iteration.

Policies whose checkpoint wave is decided before the work segment runs —
cost and restart flag independent of how many pairs die during the segment,
which covers the paper's *restart* (always a ``C^R`` wave), *no-restart*
(always plain ``C``, never restarts) and *every-k* (counter-driven)
strategies — are stepped one whole **period** (work + checkpoint) per
iteration: the fatal window spans both sub-phases, and the work lost to a
crash is the elapsed period time ``tau`` whether the crash lands in the
work or the checkpoint part.  Only the n-bound threshold policies (wave
cost depends on the end-of-segment death count) and replanning non-periodic
policies pay two iterations per period.

Policies with ``replan_on_degrade`` (the non-periodic variant) need the
exact time of the first failure in a healthy work segment; those runs fall
back to sampling that single event — still one iteration per failure, but
only until the first hit, after which the per-phase fast path resumes.

RNG contract (``repro/batch-rng-v1``, see DESIGN §5h): draws come from one
``numpy`` Generator in a pinned iteration-major order — per iteration, a
uniform (healthy-pair fatal), a unit exponential (linear-component fatal),
a uniform (event classification), then the completion and crash Binomial
blocks.  Reproducibility is at batch granularity: same seed + same config
+ same ``n_runs`` = bit-identical :class:`RunSet`.  The chunk fan-out of
:mod:`repro.parallel` derives per-chunk seeds from the root
``SeedSequence`` independently of worker count or backend, so chunked
batch results are bit-stable under any ``n_jobs``/backend combination —
but they intentionally differ from the lockstep engine's event-ordered
stream (the engines agree statistically, not bit-for-bit; the
engine-agreement suite pins that).
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import SimulationError
from repro.obs import manifest as _obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.simulation.lockstep import (
    LockstepConfig,
    _guard_can_progress,
    _iteration_budget,
)
from repro.simulation.results import RunSet
from repro.simulation.sampled import _degraded_probability_given_not_dead
from repro.util.rng import SeedLike, as_generator

__all__ = ["BATCH_RNG_CONTRACT", "BatchConfig", "simulate_batch"]

#: Pinned identity of the batch engine's draw-order contract.  Bumped
#: whenever the sampling algorithm changes the stream it consumes, so cache
#: keys derived from batch results stop matching instead of replaying a
#: different distribution of bits (see repro.cache.keys).
BATCH_RNG_CONTRACT = "repro/batch-rng-v1"

#: The batch engine simulates the same configuration space as lockstep.
BatchConfig = LockstepConfig

_WORK = 0
_CKPT = 1


def _pair_fatal_time(u: np.ndarray, m: np.ndarray, mtbf: float) -> np.ndarray:
    """Inverse-transform sample of the first healthy-pair death among *m* pairs.

    *u* is the survival value (uniform); rows with ``m == 0`` return +inf.
    Same inversion as :func:`repro.core.mtti.sample_time_to_interruption`,
    vectorised over a per-run pair count.
    """
    out = np.full(u.shape, np.inf)
    has = m > 0
    if np.any(has):
        with np.errstate(divide="ignore"):
            inner = -np.expm1(np.log(u[has]) / m[has])
        out[has] = -mtbf * np.log1p(-np.sqrt(inner))
    return out


def simulate_batch(config: BatchConfig, *, seed: SeedLike = None) -> RunSet:
    """Run a batch of independent simulations; see :class:`BatchConfig`.

    Statistically identical to :func:`~repro.simulation.lockstep.
    simulate_lockstep` on every configuration (the integration suite pins
    this), 10-100x faster on failure-dense workloads, and reproducible at
    batch granularity under the ``repro/batch-rng-v1`` contract.
    """
    t_start = time.monotonic()
    rng = as_generator(seed)
    n = config.n_runs
    policy = config.policy
    b = config.n_pairs
    s = config.n_standalone
    n_slots = config.n_slots
    lam = 1.0 / config.mtbf
    downtime_recovery = config.costs.downtime + config.costs.recovery
    _guard_can_progress(config)

    # Fused-period mode: when the checkpoint wave's cost and restart
    # decision are independent of how many pairs die during the work
    # segment (restart / no-restart / every-k / non-replanning policies),
    # the wave is decided at period start and the whole period — work plus
    # checkpoint — resolves in a single iteration (see module docstring).
    fdc = config.failures_during_checkpoint
    replan = policy.replan_on_degrade
    fused = not replan and (
        policy.restart_every_k is not None
        or policy.restart_threshold is None
        or (
            policy.restart_threshold == 1
            and policy.charge_restart_cost_when_healthy
        )
    )

    # Struct-of-arrays state vectors --------------------------------------
    phase = np.full(n, _WORK, dtype=np.int8)
    pos = np.zeros(n)  # consumed prefix of the current phase
    degraded = np.zeros(n, dtype=np.int64)
    seg_len = np.zeros(n)
    work_len = np.zeros(n)
    cost_len = np.zeros(n)  # fused mode: the pre-decided wave riding along
    restart_flag = np.zeros(n, dtype=bool)
    ckpt_counter = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)

    def _plan(run_idx: np.ndarray) -> None:
        """Plan the next segment for *run_idx* from its (reset) state.

        Fused mode also fixes the checkpoint wave now — legal because the
        eligible policies' ``checkpoint_decision`` ignores the deaths that
        the segment will add — and folds its exposure into ``seg_len``.
        """
        w = policy.work_length(degraded[run_idx])
        if fused:
            cost, restarts = policy.checkpoint_decision(
                degraded[run_idx], ckpt_counter[run_idx]
            )
            work_len[run_idx] = w
            cost_len[run_idx] = cost
            restart_flag[run_idx] = restarts
            seg_len[run_idx] = w + cost if fdc else w
        else:
            seg_len[run_idx] = w

    _plan(np.arange(n))

    # Accumulators --------------------------------------------------------
    total = np.zeros(n)
    useful = np.zeros(n)
    ckpt_time = np.zeros(n)
    rec_time = np.zeros(n)
    wasted = np.zeros(n)
    n_failures = np.zeros(n, dtype=np.int64)
    n_fatal = np.zeros(n, dtype=np.int64)
    n_ckpt = np.zeros(n, dtype=np.int64)
    n_restarts = np.zeros(n, dtype=np.int64)
    periods_done = np.zeros(n, dtype=np.int64)
    max_degraded = np.zeros(n, dtype=np.int64)

    # The lockstep budget bounds *events*; batch iterations are a strict
    # subset (one per phase / crash / replan hit), so the bound transfers.
    max_iter = _iteration_budget(config)
    n_iterations = 0
    n_phases = 0

    for _ in range(max_iter):
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            break
        n_iterations += 1
        d = degraded[idx]
        m = b - d  # healthy pairs
        remaining = seg_len[idx] - pos[idx]
        # Fused mode never enters a standalone checkpoint phase.
        in_ckpt = None if fused else phase[idx] == _CKPT

        # Pinned draw order (repro/batch-rng-v1): u_pair, g_lin, u_cls.
        u_pair = rng.random(idx.size)
        g_lin = rng.exponential(1.0, idx.size)
        u_cls = rng.random(idx.size)

        tau_pair = _pair_fatal_time(u_pair, m, config.mtbf)
        lin_rate_slots = d + s
        with np.errstate(divide="ignore"):
            tau_lin = g_lin * (config.mtbf / lin_rate_slots)
        tau = np.minimum(tau_pair, tau_lin)
        cause_pair = tau_pair < tau_lin

        # Runs resolving a single first-failure event instead of a whole
        # phase: healthy work segments of replan-on-degrade policies (the
        # replanned checkpoint needs the exact first-hit time).  They
        # re-interpret g_lin as the first failure among all (all-alive)
        # slots; u_cls picks the struck component.
        eventwise = None
        if replan:
            eventwise = (~in_ckpt) & (d == 0)
            if np.any(eventwise):
                tau[eventwise] = g_lin[eventwise] * (config.mtbf / n_slots)
                # A hit on a standalone processor is immediately fatal; any
                # of the 2b pair members merely degrades its pair.
                cause_pair[eventwise] = False

        hit = tau < remaining
        if not fdc and not fused:
            hit &= ~in_ckpt  # fused seg_len already excludes the wave

        # --- first failure inside a healthy replan segment ----------------
        if replan:
            ev_loc = np.nonzero(hit & eventwise)[0]
            if ev_loc.size:
                e_idx = idx[ev_loc]
                t_ev = tau[ev_loc]
                total[e_idx] += t_ev
                pos[e_idx] += t_ev
                n_failures[e_idx] += 1
                is_fatal = u_cls[ev_loc] < (s / n_slots if n_slots else 0.0)
                f_idx = e_idx[is_fatal]
                if f_idx.size:  # standalone struck: crash, healthy platform
                    wasted[f_idx] += pos[f_idx]
                    total[f_idx] += downtime_recovery
                    rec_time[f_idx] += downtime_recovery
                    n_fatal[f_idx] += 1
                    n_restarts[f_idx] += 1
                    ckpt_counter[f_idx] = 0
                    phase[f_idx] = _WORK
                    pos[f_idx] = 0.0
                    _plan(f_idx)
                g_idx = e_idx[~is_fatal]
                if g_idx.size:  # pair member struck: degrade and re-plan
                    degraded[g_idx] = 1
                    max_degraded[g_idx] = np.maximum(max_degraded[g_idx], 1)
                    seg_len[g_idx] = pos[g_idx] + policy.degraded_period

        # --- fatal failure inside the phase (per-phase fast path) ---------
        f_loc = np.nonzero(hit & ~eventwise)[0] if replan else np.nonzero(hit)[0]
        if f_loc.size:
            f_idx = idx[f_loc]
            t_f = tau[f_loc]
            was_pair = cause_pair[f_loc]
            # Degrades observed before the crash, among the healthy pairs
            # that did *not* cause it, each conditioned on surviving to tau.
            q_bad = _degraded_probability_given_not_dead(lam, t_f)
            others = m[f_loc] - was_pair.astype(np.int64)
            deg_bad = rng.binomial(others, q_bad)
            d_crash = degraded[f_idx] + deg_bad + was_pair
            n_failures[f_idx] += deg_bad + 1 + was_pair
            max_degraded[f_idx] = np.maximum(max_degraded[f_idx], d_crash)
            n_fatal[f_idx] += 1
            n_restarts[f_idx] += d_crash + 1  # dead pair halves + the victim
            pos[f_idx] += t_f
            if fused:
                # pos counts from period start, so the lost work is simply
                # the elapsed period time — crash in the work part or the
                # checkpoint part alike.
                lost = pos[f_idx]
            else:
                lost = np.where(
                    in_ckpt[f_loc], work_len[f_idx] + pos[f_idx], pos[f_idx]
                )
            wasted[f_idx] += lost
            total[f_idx] += t_f + downtime_recovery
            rec_time[f_idx] += downtime_recovery
            # Crash rejuvenation: restart from the last valid checkpoint
            # with a fresh platform.
            degraded[f_idx] = 0
            ckpt_counter[f_idx] = 0
            phase[f_idx] = _WORK
            pos[f_idx] = 0.0
            _plan(f_idx)

        # --- phase completions --------------------------------------------
        done_loc = np.nonzero(~hit)[0]
        if done_loc.size:
            d_idx = idx[done_loc]
            total[d_idx] += remaining[done_loc]
            # Pairs that silently degraded during the survived phase.  Two
            # exclusions: checkpoint phases while checkpoint failures are
            # disabled (no failures strike), and event-wise replan segments
            # (their sample conditions on *no hit at all* in the window).
            window = remaining[done_loc]
            if fused:
                # seg_len covered exactly the failure-exposed span, and
                # fused policies never run event-wise.
                q_ok = _degraded_probability_given_not_dead(lam, window)
            else:
                can_fail = None
                if replan:
                    can_fail = ~eventwise[done_loc]
                    if not fdc:
                        can_fail &= ~in_ckpt[done_loc]
                elif not fdc:
                    can_fail = ~in_ckpt[done_loc]
                q_ok = _degraded_probability_given_not_dead(lam, window)
                if can_fail is not None:
                    q_ok = np.where(can_fail, q_ok, 0.0)
            deg_ok = rng.binomial(m[done_loc], q_ok)
            degraded[d_idx] += deg_ok
            n_failures[d_idx] += deg_ok
            max_degraded[d_idx] = np.maximum(max_degraded[d_idx], degraded[d_idx])

            if fused:
                # One whole period retired: the work segment and the wave
                # that was decided with it at planning time.
                n_phases += 2 * int(done_loc.size)
                if not fdc:  # wave exposure excluded from seg_len: add time
                    total[d_idx] += cost_len[d_idx]
                useful[d_idx] += work_len[d_idx]
                ckpt_time[d_idx] += cost_len[d_idx]
                n_ckpt[d_idx] += 1
                periods_done[d_idx] += 1
                restarted = restart_flag[d_idx]
                rest = d_idx[restarted]
                if rest.size:
                    n_restarts[rest] += degraded[rest]
                    degraded[rest] = 0
                    ckpt_counter[rest] = 0
                plain = d_idx[~restarted]
                if plain.size:
                    ckpt_counter[plain] += 1
                pos[d_idx] = 0.0
                _plan(d_idx)
            else:
                n_phases += int(done_loc.size)
                was_work = phase[d_idx] == _WORK
                w_idx = d_idx[was_work]
                if w_idx.size:  # work segment done: enter (or skip) checkpoint
                    work_len[w_idx] = seg_len[w_idx]
                    cost, restarts = policy.checkpoint_decision(
                        degraded[w_idx], ckpt_counter[w_idx]
                    )
                    phase[w_idx] = _CKPT
                    pos[w_idx] = 0.0
                    seg_len[w_idx] = cost
                    restart_flag[w_idx] = restarts
                    if not fdc:
                        total[w_idx] += cost
                        _complete_checkpoint(
                            w_idx, policy, degraded, phase, pos, seg_len, work_len,
                            restart_flag, ckpt_counter, useful, ckpt_time, n_ckpt,
                            n_restarts, periods_done,
                        )
                k_idx = d_idx[~was_work]
                if k_idx.size:
                    _complete_checkpoint(
                        k_idx, policy, degraded, phase, pos, seg_len, work_len,
                        restart_flag, ckpt_counter, useful, ckpt_time, n_ckpt,
                        n_restarts, periods_done,
                    )

        # --- termination ---------------------------------------------------
        if config.n_periods is not None:
            np.logical_and(active, periods_done < config.n_periods, out=active)
        else:
            np.logical_and(active, useful < config.work_target, out=active)
    else:
        raise SimulationError(
            "batch engine exceeded its iteration budget; the configuration "
            "likely cannot make progress (period shorter than failure gaps)"
        )

    # metric points are always-on (batch granularity, merged back from
    # pool workers by run_chunked); JSONL emission stays trace-gated
    obs_metrics.inc("engine.batch.batches")
    obs_metrics.inc("engine.batch.runs", n)
    obs_metrics.inc("engine.batch.iterations", n_iterations)
    obs_metrics.inc("engine.batch.failures", int(n_failures.sum()))
    if obs.enabled():
        obs.event(
            "engine.batch",
            runs=n,
            iterations=n_iterations,
            phases=n_phases,
            failures=int(n_failures.sum()),
            fatal=int(n_fatal.sum()),
            periods=int(periods_done.sum()),
        )
        obs.count("engine.batch.iterations", n_iterations)
        obs.count("engine.batch.failures", int(n_failures.sum()))
    return RunSet(
        total_time=total,
        useful_time=useful,
        checkpoint_time=ckpt_time,
        recovery_time=rec_time,
        wasted_time=wasted,
        n_failures=n_failures,
        n_fatal=n_fatal,
        n_checkpoints=n_ckpt,
        n_proc_restarts=n_restarts,
        max_degraded=max_degraded,
        label=policy.name,
        meta={
            "mtbf": config.mtbf,
            "n_pairs": config.n_pairs,
            "n_standalone": config.n_standalone,
            "engine": "batch",
            "rng_contract": BATCH_RNG_CONTRACT,
            "manifest": _obs_manifest.RunManifest(
                label=policy.name,
                seed=_obs_manifest.seed_provenance(rng),
                config={
                    "mtbf": config.mtbf,
                    "n_pairs": config.n_pairs,
                    "n_standalone": config.n_standalone,
                    "policy": policy.name,
                    "n_runs": config.n_runs,
                    "n_periods": config.n_periods,
                    "work_target": config.work_target,
                    "failures_during_checkpoint": config.failures_during_checkpoint,
                },
                execution={"engine": "batch", "rng_contract": BATCH_RNG_CONTRACT},
                timings={"total_s": time.monotonic() - t_start},
            ).to_dict(),
        },
    )


def _complete_checkpoint(
    k_idx, policy, degraded, phase, pos, seg_len, work_len, restart_flag,
    ckpt_counter, useful, ckpt_time, n_ckpt, n_restarts, periods_done,
) -> None:
    """Apply checkpoint-completion bookkeeping for runs *k_idx* (in place).

    Mirrors the lockstep engine's bookkeeping exactly: the two engines
    share period/restart semantics, differing only in how the failure
    process inside a phase is sampled.
    """
    ckpt_time[k_idx] += seg_len[k_idx]
    n_ckpt[k_idx] += 1
    useful[k_idx] += work_len[k_idx]
    periods_done[k_idx] += 1
    restarted = restart_flag[k_idx]
    rest = k_idx[restarted]
    if rest.size:
        n_restarts[rest] += degraded[rest]
        degraded[rest] = 0
        ckpt_counter[rest] = 0
    plain = k_idx[~restarted]
    if plain.size:
        ckpt_counter[plain] += 1
    phase[k_idx] = _WORK
    pos[k_idx] = 0.0
    seg_len[k_idx] = policy.work_length(degraded[k_idx])
    restart_flag[k_idx] = False
