"""General event-driven engine: explicit failure events with processor ids.

Unlike the lockstep engine (exponential-only), this engine consumes an
arbitrary :class:`~repro.failures.generator.FailureStream` — replayed LANL
traces, Weibull renewal processes, anything that yields time-ordered
``(time, processor)`` events.  It tracks per-processor liveness, so the
*same pair being struck twice* is determined by actual processor identities
rather than by aggregate probabilities.

Processor layout (matching :class:`~repro.platform_model.RackTopology`):
pair ``i`` consists of processors ``i`` and ``b + i``; standalone
processors occupy ids ``2b .. n_procs-1``.

Semantics are identical to the lockstep engine (same phases, same
accounting); the integration tests verify that both engines agree within
Monte-Carlo error on exponential inputs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError, SimulationError
from repro.failures.generator import FailureSource
from repro.obs import manifest as _obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.platform_model.costs import CheckpointCosts
from repro.simulation.policies import PeriodicPolicy
from repro.simulation.results import RunSet
from repro.util.rng import SeedLike, as_seed_sequence
from repro.util.validation import check_positive, check_positive_int

__all__ = ["TraceEngineConfig", "simulate_trace_runs"]


@dataclass(frozen=True)
class TraceEngineConfig:
    """Configuration for trace-driven simulation batches.

    ``source`` provides the failure sample paths; each run opens one stream
    with an independent seed.  Platform layout must be consistent with the
    source's ``n_procs`` (``2*n_pairs + n_standalone == source.n_procs``).
    """

    source: FailureSource
    n_pairs: int
    policy: PeriodicPolicy
    costs: CheckpointCosts
    n_runs: int
    n_periods: int | None = None
    work_target: float | None = None
    n_standalone: int = 0
    failures_during_checkpoint: bool = True

    def __post_init__(self) -> None:
        if self.n_pairs < 0 or self.n_standalone < 0:
            raise ParameterError("n_pairs and n_standalone must be non-negative")
        if 2 * self.n_pairs + self.n_standalone != self.source.n_procs:
            raise ParameterError(
                f"platform layout ({2 * self.n_pairs}+{self.n_standalone}) does not "
                f"match the failure source ({self.source.n_procs} processors)"
            )
        check_positive_int("n_runs", self.n_runs)
        if (self.n_periods is None) == (self.work_target is None):
            raise ParameterError("set exactly one of n_periods / work_target")
        if self.n_periods is not None:
            check_positive_int("n_periods", self.n_periods)
        if self.work_target is not None:
            check_positive("work_target", self.work_target)


class _PlatformState:
    """Per-processor liveness with O(dead) reset."""

    def __init__(self, n_pairs: int, n_standalone: int) -> None:
        self.n_pairs = n_pairs
        self.n_standalone = n_standalone
        self.n_procs = 2 * n_pairs + n_standalone
        self.dead = np.zeros(self.n_procs, dtype=bool)
        self.dead_list: list[int] = []

    @property
    def n_dead(self) -> int:
        return len(self.dead_list)

    def partner(self, proc: int) -> int | None:
        if proc < self.n_pairs:
            return proc + self.n_pairs
        if proc < 2 * self.n_pairs:
            return proc - self.n_pairs
        return None  # standalone

    def strike(self, proc: int) -> str:
        """Apply a failure event; returns 'ignored', 'degraded' or 'fatal'."""
        if self.dead[proc]:
            return "ignored"
        partner = self.partner(proc)
        if partner is None:
            # Standalone processor: its failure interrupts the application.
            self.dead[proc] = True
            self.dead_list.append(proc)
            return "fatal"
        self.dead[proc] = True
        self.dead_list.append(proc)
        return "fatal" if self.dead[partner] else "degraded"

    def restart_all(self) -> int:
        """Revive every dead processor; returns how many were restarted."""
        n = len(self.dead_list)
        if n:
            self.dead[np.asarray(self.dead_list)] = False
            self.dead_list.clear()
        return n


def simulate_trace_runs(config: TraceEngineConfig, *, seed: SeedLike = None) -> RunSet:
    """Simulate ``config.n_runs`` independent runs against the failure source.

    Each run opens a fresh stream (independent rotation/permutation seeds
    for trace sources; independent sample paths for renewal sources).
    """
    t_start = time.monotonic()
    root_seed = as_seed_sequence(seed)
    seeds = root_seed.spawn(config.n_runs)
    metrics = {
        name: np.zeros(config.n_runs)
        for name in (
            "total_time",
            "useful_time",
            "checkpoint_time",
            "recovery_time",
            "wasted_time",
        )
    }
    counts = {
        name: np.zeros(config.n_runs, dtype=np.int64)
        for name in ("n_failures", "n_fatal", "n_checkpoints", "n_proc_restarts", "max_degraded")
    }
    for r in range(config.n_runs):
        out = _simulate_one(config, seeds[r])
        for name, arr in metrics.items():
            arr[r] = out[name]
        for name, arr in counts.items():
            arr[r] = out[name]
    # metric points are always-on (batch granularity, merged back from
    # pool workers by run_chunked); JSONL emission stays trace-gated
    obs_metrics.inc("engine.trace.batches")
    obs_metrics.inc("engine.trace.runs", config.n_runs)
    obs_metrics.inc("engine.trace.failures", int(counts["n_failures"].sum()))
    obs_metrics.inc("engine.trace.checkpoints", int(counts["n_checkpoints"].sum()))
    if obs.enabled():
        obs.event(
            "engine.trace",
            runs=config.n_runs,
            failures=int(counts["n_failures"].sum()),
            fatal=int(counts["n_fatal"].sum()),
            checkpoints=int(counts["n_checkpoints"].sum()),
        )
        obs.count("engine.trace.runs", config.n_runs)
        obs.count("engine.trace.failures", int(counts["n_failures"].sum()))
    return RunSet(
        label=config.policy.name,
        meta={
            "n_pairs": config.n_pairs,
            "n_standalone": config.n_standalone,
            "engine": "trace",
            "manifest": _obs_manifest.RunManifest(
                label=config.policy.name,
                seed=_obs_manifest.seed_provenance(root_seed),
                config={
                    "source": type(config.source).__name__,
                    "n_pairs": config.n_pairs,
                    "n_standalone": config.n_standalone,
                    "policy": config.policy.name,
                    "n_runs": config.n_runs,
                    "n_periods": config.n_periods,
                    "work_target": config.work_target,
                    "failures_during_checkpoint": config.failures_during_checkpoint,
                },
                execution={"engine": "trace"},
                timings={"total_s": time.monotonic() - t_start},
            ).to_dict(),
        },
        **metrics,
        **counts,
    )


def _simulate_one(config: TraceEngineConfig, seed) -> dict:
    policy = config.policy
    state = _PlatformState(config.n_pairs, config.n_standalone)
    stream = config.source.open(seed, horizon_hint=_horizon_hint(config))

    total = useful = ckpt_time = rec_time = wasted = 0.0
    n_failures = n_fatal = n_ckpt = n_restarts = 0
    max_degraded = 0
    periods_done = 0
    ckpts_since_restart = 0
    dr = config.costs.downtime + config.costs.recovery

    deg0 = np.zeros(1, dtype=np.int64)
    cnt0 = np.zeros(1, dtype=np.int64)

    def work_len_now() -> float:
        deg0[0] = state.n_dead
        return float(policy.work_length(deg0)[0])

    # Budget guards against zero-progress configurations.
    budget = _attempt_budget(config)
    attempts = 0

    while True:
        if config.n_periods is not None:
            if periods_done >= config.n_periods:
                break
        elif useful >= config.work_target:
            break
        attempts += 1
        if attempts > budget:
            raise SimulationError(
                "trace engine exceeded its attempt budget; the period is "
                "likely too short to ever complete between failures"
            )

        # ---------------- work segment --------------------------------
        seg = work_len_now()
        seg_start = total
        crashed = False
        replanned = state.n_dead > 0  # degraded segments are already short
        events_t, events_p = stream.failures_between(seg_start, seg_start + seg)
        i = 0
        while i < events_t.size:
            et, ep = float(events_t[i]), int(events_p[i])
            outcome = state.strike(ep)
            i += 1
            if outcome == "ignored":
                continue
            n_failures += 1
            if outcome == "fatal":
                lost = et - seg_start
                wasted += lost
                total = et + dr
                rec_time += dr
                n_fatal += 1
                n_restarts += state.restart_all()
                ckpts_since_restart = 0
                crashed = True
                break
            # degraded
            max_degraded = max(max_degraded, state.n_dead)
            if policy.replan_on_degrade and not replanned:
                # First failure re-plans: next checkpoint lands T2 after it.
                replanned = True
                seg = et + policy.degraded_period - seg_start
                events_t, events_p = stream.failures_between(
                    np.nextafter(et, np.inf), seg_start + seg
                )
                i = 0
        if crashed:
            continue  # retry the period from the last checkpoint
        total = seg_start + seg

        # ---------------- checkpoint wave ------------------------------
        deg0[0] = state.n_dead
        cnt0[0] = ckpts_since_restart
        cost_arr, restart_arr = policy.checkpoint_decision(deg0, cnt0)
        cost = float(cost_arr[0])
        do_restart = bool(restart_arr[0])
        if config.failures_during_checkpoint:
            events_t, events_p = stream.failures_between(total, total + cost)
            crashed = False
            for et, ep in zip(events_t, events_p):
                outcome = state.strike(int(ep))
                if outcome == "ignored":
                    continue
                n_failures += 1
                if outcome == "fatal":
                    lost = float(et) - seg_start
                    wasted += lost
                    total = float(et) + dr
                    rec_time += dr
                    n_fatal += 1
                    n_restarts += state.restart_all()
                    ckpts_since_restart = 0
                    crashed = True
                    break
                max_degraded = max(max_degraded, state.n_dead)
            if crashed:
                continue
        total += cost
        ckpt_time += cost
        n_ckpt += 1
        useful += seg
        periods_done += 1
        if do_restart:
            n_restarts += state.restart_all()
            ckpts_since_restart = 0
        else:
            ckpts_since_restart += 1

    return {
        "total_time": total,
        "useful_time": useful,
        "checkpoint_time": ckpt_time,
        "recovery_time": rec_time,
        "wasted_time": wasted,
        "n_failures": n_failures,
        "n_fatal": n_fatal,
        "n_checkpoints": n_ckpt,
        "n_proc_restarts": n_restarts,
        "max_degraded": max_degraded,
    }


def _horizon_hint(config: TraceEngineConfig) -> float:
    """Generous estimate of a run's wall-clock length for stream pre-sizing."""
    policy = config.policy
    n_periods = (
        config.n_periods
        if config.n_periods is not None
        else int(np.ceil(config.work_target / min(policy.period, policy.degraded_period or policy.period))) + 1
    )
    per_period = (
        policy.period
        + max(policy.checkpoint_cost, policy.restart_wave_cost)
        + config.costs.downtime
        + config.costs.recovery
    )
    return 8.0 * n_periods * per_period


def _attempt_budget(config: TraceEngineConfig) -> int:
    n_periods = (
        config.n_periods
        if config.n_periods is not None
        else int(np.ceil(config.work_target / config.policy.period)) + 1
    )
    return 1000 * n_periods + 100_000
