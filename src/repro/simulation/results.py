"""Result containers for simulation runs.

A *run* simulates one application execution (e.g. 100 checkpointing periods,
as in the paper); a :class:`RunSet` holds the per-run metric vectors of many
independent replications and derives the aggregate statistics the paper
reports (mean time overhead, time-to-solution, I/O pressure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ParameterError
from repro.util.stats import mean_confidence_halfwidth

__all__ = ["RunSet", "OverheadSummary"]


_VECTOR_FIELDS = (
    "total_time",
    "useful_time",
    "checkpoint_time",
    "recovery_time",
    "wasted_time",
    "n_failures",
    "n_fatal",
    "n_checkpoints",
    "n_proc_restarts",
    "max_degraded",
)


@dataclass
class RunSet:
    """Per-run metric vectors for a batch of independent simulations.

    Attributes
    ----------
    total_time:
        Wall-clock time of each run (work + checkpoints + waste + recovery).
    useful_time:
        Progress-making (checkpointed) work time of each run.
    checkpoint_time:
        Time spent in *successful* checkpoint waves.
    recovery_time:
        Downtime + recovery time after application crashes.
    wasted_time:
        Re-executed/lost time (work and partial checkpoints destroyed by
        fatal failures).
    n_failures:
        Failures that struck a live processor (fatal or not).
    n_fatal:
        Application crashes (rollbacks).
    n_checkpoints:
        Completed checkpoint waves.
    n_proc_restarts:
        Individual processors brought back at checkpoints or recoveries.
    max_degraded:
        Per-run maximum of simultaneously degraded pairs.
    label:
        Strategy / configuration tag for reports.
    """

    total_time: np.ndarray
    useful_time: np.ndarray
    checkpoint_time: np.ndarray
    recovery_time: np.ndarray
    wasted_time: np.ndarray
    n_failures: np.ndarray
    n_fatal: np.ndarray
    n_checkpoints: np.ndarray
    n_proc_restarts: np.ndarray
    max_degraded: np.ndarray
    label: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = None
        for name in _VECTOR_FIELDS:
            arr = np.asarray(getattr(self, name))
            setattr(self, name, arr)
            if n is None:
                n = arr.shape
            elif arr.shape != n:
                raise ParameterError(
                    f"metric vector {name!r} has shape {arr.shape}, expected {n}"
                )
        if self.n_runs == 0:
            raise ParameterError("a RunSet needs at least one run")
        if np.any(self.useful_time <= 0):
            raise ParameterError("every run must complete some useful work")

    # ------------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        return int(self.total_time.size)

    @property
    def overheads(self) -> np.ndarray:
        """Per-run time overhead ``total / useful - 1`` (paper Eq. 1)."""
        return self.total_time / self.useful_time - 1.0

    def overhead_summary(self, level: float = 0.95) -> "OverheadSummary":
        """Mean overhead with a confidence interval."""
        ov = self.overheads
        return OverheadSummary(
            label=self.label,
            mean=float(ov.mean()),
            halfwidth=mean_confidence_halfwidth(ov, level=level),
            n_runs=self.n_runs,
        )

    @property
    def mean_overhead(self) -> float:
        return float(self.overheads.mean())

    @property
    def mean_total_time(self) -> float:
        return float(self.total_time.mean())

    @property
    def mean_checkpoint_frequency(self) -> float:
        """Checkpoints per second of wall-clock time (I/O pressure proxy)."""
        return float((self.n_checkpoints / self.total_time).mean())

    @property
    def mean_io_time_fraction(self) -> float:
        """Fraction of wall-clock time spent doing checkpoint/recovery I/O."""
        io = self.checkpoint_time + self.recovery_time
        return float((io / self.total_time).mean())

    @property
    def multi_failure_rollback_fraction(self) -> float:
        """Among runs that crashed at least once, the fraction that crashed
        two or more times.

        The paper reports (Section 7.2) that among runs experiencing an
        application failure, 15 % experienced two or more for IID
        exponential failures, 20 % for LANL#18 and 50 % for LANL#2 —
        failure cascades make repeat crashes likelier.
        """
        crashed = self.n_fatal > 0
        if not crashed.any():
            return 0.0
        multi = self.n_fatal >= 2
        return float(multi.sum() / crashed.sum())

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation (vectors as lists)."""
        out: dict = {"label": self.label, "meta": dict(self.meta)}
        for name in _VECTOR_FIELDS:
            out[name] = np.asarray(getattr(self, name)).tolist()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunSet":
        missing = [name for name in _VECTOR_FIELDS if name not in data]
        if missing:
            raise ParameterError(
                f"RunSet payload is missing field(s): {', '.join(missing)}"
            )
        kwargs = {name: np.asarray(data[name]) for name in _VECTOR_FIELDS}
        return cls(label=data.get("label", ""), meta=data.get("meta", {}), **kwargs)

    @classmethod
    def concatenate(cls, parts: list["RunSet"], label: str | None = None) -> "RunSet":
        """Merge several run batches into one (e.g. chunked execution).

        Run order follows the order of *parts*; the label of the first part
        is inherited (pass *label* to override).  Metadata is merged
        deterministically across *all* parts — first occurrence of a key
        wins, in part order — and ``n_parts`` records how many batches were
        merged, so chunked and serial executions of the same workload carry
        the same information.
        """
        if not parts:
            raise ParameterError("cannot concatenate an empty list of RunSets")
        kwargs = {
            name: np.concatenate([np.asarray(getattr(p, name)) for p in parts])
            for name in _VECTOR_FIELDS
        }
        merged_meta: dict = {}
        for part in parts:
            for key, value in part.meta.items():
                merged_meta.setdefault(key, value)
        merged_meta["n_parts"] = len(parts)
        return cls(
            label=label if label is not None else parts[0].label,
            meta=merged_meta,
            **kwargs,
        )


@dataclass(frozen=True)
class OverheadSummary:
    """Aggregated overhead of a strategy at one configuration point."""

    label: str
    mean: float
    halfwidth: float
    n_runs: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label}: overhead {self.mean:.4%} ± {self.halfwidth:.4%} ({self.n_runs} runs)"
