"""Checkpoint-and-restart policies.

A :class:`PeriodicPolicy` tells the engines (a) how long the next work
segment is, given the current platform degradation, and (b) what happens at
each checkpoint: its duration and whether failed processors are restarted.
All of the paper's periodic strategies are expressible as instances:

* :func:`restart_policy` — the paper's contribution: restart failed
  processors at *every* checkpoint, paying ``C^R`` per wave (Section 4.2);
* :func:`no_restart_policy` — prior work: plain checkpoints of cost ``C``,
  failed processors stay dead until the application crashes;
* :func:`nbound_policy` — Section 7.7 extension: restart once at least
  ``n_bound`` processors are dead at a checkpoint, that wave costing
  ``2C`` (the paper's worst case), plain ``C`` otherwise;
* :func:`non_periodic_policy` — Figure 2 variant: period ``T1`` while the
  platform is healthy, shorter ``T2`` once a processor has died (the next
  checkpoint is re-planned ``T2`` after the first failure), no restart
  before a crash.

The *restart-on-failure* strategy is not periodic and lives in
:mod:`repro.simulation.restart_on_failure`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.platform_model.costs import CheckpointCosts
from repro.util.validation import check_positive, check_positive_int

__all__ = [
    "PeriodicPolicy",
    "restart_policy",
    "no_restart_policy",
    "nbound_policy",
    "non_periodic_policy",
    "every_k_policy",
]


@dataclass(frozen=True)
class PeriodicPolicy:
    """Declarative description of a periodic checkpoint/restart strategy.

    Engines read these fields; see the module docstring for the named
    constructors that build the paper's strategies.

    Attributes
    ----------
    name:
        Label used in result sets and reports.
    period:
        Planned work-segment length when no pair is degraded (seconds).
    degraded_period:
        If set, work-segment length used while at least one pair is
        degraded; ``replan_on_degrade`` controls whether an in-flight
        segment is cut short when the first failure lands.
    replan_on_degrade:
        When True, the first failure in a healthy segment moves the next
        checkpoint to ``failure_time + degraded_period``.
    restart_threshold:
        Restart dead processors at a checkpoint iff at least this many are
        dead (1 = every checkpoint with any dead processor; ``None`` =
        never restart at checkpoints).
    restart_every_k:
        Time-driven rejuvenation (the conclusion's future-work variant):
        restart dead processors at every k-th checkpoint, regardless of how
        many died.  Mutually exclusive with ``restart_threshold``.
    checkpoint_cost:
        Duration of a plain (non-restarting) checkpoint.
    restart_wave_cost:
        Duration of a checkpoint wave that also restarts processors.
    charge_restart_cost_when_healthy:
        For the *restart* strategy the analysis charges ``C^R`` for every
        checkpoint, even the (rare) ones where nobody died; set False to
        charge only ``C`` in that case.
    """

    name: str
    period: float
    checkpoint_cost: float
    restart_wave_cost: float
    restart_threshold: int | None = None
    restart_every_k: int | None = None
    degraded_period: float | None = None
    replan_on_degrade: bool = False
    charge_restart_cost_when_healthy: bool = True

    def __post_init__(self) -> None:
        check_positive("period", self.period)
        check_positive("checkpoint_cost", self.checkpoint_cost)
        check_positive("restart_wave_cost", self.restart_wave_cost)
        if self.restart_threshold is not None:
            check_positive_int("restart_threshold", self.restart_threshold)
        if self.restart_every_k is not None:
            check_positive_int("restart_every_k", self.restart_every_k)
            if self.restart_threshold is not None:
                raise ParameterError(
                    "restart_threshold and restart_every_k are mutually exclusive"
                )
        if self.degraded_period is not None:
            check_positive("degraded_period", self.degraded_period)
        if self.replan_on_degrade and self.degraded_period is None:
            raise ParameterError("replan_on_degrade requires degraded_period")

    # ------------------------------------------------------------------
    # Vectorised hooks used by the lockstep engine
    # ------------------------------------------------------------------
    def work_length(self, degraded: np.ndarray) -> np.ndarray:
        """Planned work length for the next segment, per run."""
        if self.degraded_period is None:
            return np.full(degraded.shape, self.period)
        return np.where(degraded > 0, self.degraded_period, self.period)

    def checkpoint_decision(
        self, dead: np.ndarray, ckpts_since_restart: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(cost, restarts) of the checkpoint wave.

        *dead* is the dead-processor count per run; *ckpts_since_restart*
        counts completed checkpoints since the last rejuvenation (used by
        ``restart_every_k`` policies; engines must supply it then).
        """
        if self.restart_every_k is not None:
            if ckpts_since_restart is None:
                raise ParameterError(
                    "restart_every_k policies need the engine to pass "
                    "ckpts_since_restart to checkpoint_decision"
                )
            restarts = ckpts_since_restart + 1 >= self.restart_every_k
            cost = np.where(restarts, self.restart_wave_cost, self.checkpoint_cost)
            return cost, restarts
        if self.restart_threshold is None:
            return np.full(dead.shape, self.checkpoint_cost), np.zeros(dead.shape, dtype=bool)
        restarts = dead >= self.restart_threshold
        if self.restart_threshold == 1 and self.charge_restart_cost_when_healthy:
            # The paper's restart strategy: every checkpoint is a C^R wave.
            cost = np.full(dead.shape, self.restart_wave_cost)
            return cost, np.ones(dead.shape, dtype=bool)
        cost = np.where(restarts, self.restart_wave_cost, self.checkpoint_cost)
        return cost, restarts


def restart_policy(
    period: float,
    costs: CheckpointCosts,
    *,
    charge_restart_cost_when_healthy: bool = True,
) -> PeriodicPolicy:
    """The paper's *restart* strategy: every checkpoint is a ``C^R`` wave."""
    return PeriodicPolicy(
        name=f"Restart(T={period:g})",
        period=period,
        checkpoint_cost=costs.checkpoint,
        restart_wave_cost=costs.restart_checkpoint,
        restart_threshold=1,
        charge_restart_cost_when_healthy=charge_restart_cost_when_healthy,
    )


def no_restart_policy(period: float, costs: CheckpointCosts) -> PeriodicPolicy:
    """Prior work's *no-restart*: plain checkpoints, rejuvenate on crash only."""
    return PeriodicPolicy(
        name=f"NoRestart(T={period:g})",
        period=period,
        checkpoint_cost=costs.checkpoint,
        restart_wave_cost=costs.checkpoint,
        restart_threshold=None,
    )


def nbound_policy(
    period: float,
    costs: CheckpointCosts,
    n_bound: int,
    *,
    restart_wave_factor: float = 2.0,
) -> PeriodicPolicy:
    """Section 7.7: restart at a checkpoint only once >= *n_bound* procs died.

    Restarting waves cost ``restart_wave_factor * C`` (2C by default — the
    paper's pessimistic assumption for this experiment); plain checkpoints
    cost ``C``.
    """
    n_bound = check_positive_int("n_bound", n_bound)
    return PeriodicPolicy(
        name=f"NBound(n={n_bound}, T={period:g})",
        period=period,
        checkpoint_cost=costs.checkpoint,
        restart_wave_cost=restart_wave_factor * costs.checkpoint,
        restart_threshold=n_bound,
    )


def every_k_policy(
    period: float,
    costs: CheckpointCosts,
    k: int,
) -> PeriodicPolicy:
    """Future-work variant: rejuvenate at every k-th checkpoint.

    The paper's conclusion proposes evaluating strategies that "rejuvenate
    failed processors ... after a given time interval is exceeded"; with a
    fixed period this is a restart every ``k`` checkpoints (``k = 1``
    recovers the restart strategy).  Restarting waves cost ``C^R``, plain
    checkpoints ``C``.
    """
    k = check_positive_int("k", k)
    return PeriodicPolicy(
        name=f"EveryK(k={k}, T={period:g})",
        period=period,
        checkpoint_cost=costs.checkpoint,
        restart_wave_cost=costs.restart_checkpoint,
        restart_every_k=k,
    )


def non_periodic_policy(
    healthy_period: float,
    degraded_period: float,
    costs: CheckpointCosts,
    *,
    replan_on_degrade: bool = True,
) -> PeriodicPolicy:
    """Figure 2's non-periodic *no-restart* variant (T1 healthy, T2 degraded)."""
    return PeriodicPolicy(
        name=f"NonPeriodic(T1={healthy_period:g}, T2={degraded_period:g})",
        period=healthy_period,
        degraded_period=degraded_period,
        replan_on_degrade=replan_on_degrade,
        checkpoint_cost=costs.checkpoint,
        restart_wave_cost=costs.checkpoint,
        restart_threshold=None,
    )
