"""The *restart-on-failure* strategy (paper Sections 1 and 7.3).

Instead of periodic checkpoints, the platform reacts to every failure: the
surviving replica checkpoints immediately (cost ``C``) and the spare
replacing the dead processor loads that checkpoint; tightly-coupled
applications block for the wave, so every failure extends the execution by
``C``.  There is no rollback unless a second failure strikes the *same
pair's survivor* while the wave is in flight — a narrow window, which is
why the paper observes zero rollbacks but a rapidly growing checkpoint-time
overhead as the MTBF shrinks (Figure 6).

Implementation: under exponential failures the inter-failure gaps of the
platform are IID ``Exp(mu / N)`` (dead-slot absorption as in the lockstep
engine; waves are short and rare enough that the platform is all-alive
between failures).  Each run is simulated with vectorised per-event arrays:
work progresses by the gap, each live hit adds ``C``, and the fatal check
draws whether the next failure lands within the wave *and* on the specific
partner slot.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.platform_model.costs import CheckpointCosts
from repro.simulation.results import RunSet
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive, check_positive_int

__all__ = ["simulate_restart_on_failure"]


def simulate_restart_on_failure(
    *,
    mtbf: float,
    n_pairs: int,
    work_target: float,
    costs: CheckpointCosts,
    n_runs: int,
    seed: SeedLike = None,
) -> RunSet:
    """Simulate *restart-on-failure* until *work_target* seconds of work.

    Parameters
    ----------
    mtbf:
        Individual processor MTBF (seconds).
    n_pairs:
        Replicated pairs (full replication; ``N = 2 n_pairs``).
    work_target:
        Useful work each run must complete (e.g. ``100 * T_opt^rs`` to
        match a periodic baseline's workload, as in Figure 6).
    costs:
        ``costs.checkpoint`` is the per-failure wave cost; downtime and
        recovery are paid on the (rare) fatal cascade.
    """
    mtbf = check_positive("mtbf", mtbf)
    n_pairs = check_positive_int("n_pairs", n_pairs)
    work_target = check_positive("work_target", work_target)
    n_runs = check_positive_int("n_runs", n_runs)
    rng = as_generator(seed)

    n_slots = 2 * n_pairs
    mean_gap = mtbf / n_slots
    c = costs.checkpoint
    dr = costs.downtime + costs.recovery
    # P(a given failure lands on a live slot): degraded intervals are the
    # in-flight waves only; outside a wave every slot is alive.
    expected_events = int(np.ceil(work_target / mean_gap * 1.3 + 64))

    total = np.zeros(n_runs)
    ckpt_time = np.zeros(n_runs)
    rec_time = np.zeros(n_runs)
    wasted = np.zeros(n_runs)
    n_failures = np.zeros(n_runs, dtype=np.int64)
    n_fatal = np.zeros(n_runs, dtype=np.int64)
    n_restarts = np.zeros(n_runs, dtype=np.int64)

    for r in range(n_runs):
        work_done = 0.0
        chunk = max(expected_events, 1024)
        while work_done < work_target:
            gaps = rng.exponential(mean_gap, chunk)
            cum = work_done + np.cumsum(gaps)
            inside = cum < work_target
            k = int(np.count_nonzero(inside))
            if k == 0:
                work_done = work_target
                break
            # Every failure inside the remaining work triggers a wave.
            n_failures[r] += k
            n_restarts[r] += k
            ckpt_time[r] += k * c
            # Fatal cascade: the next failure arrives within the wave AND
            # hits the one partner slot (probability 1/n_slots each event).
            next_gaps = gaps[1 : k + 1]
            in_wave = next_gaps < c
            partner_hit = rng.random(in_wave.size) < 1.0 / n_slots
            fatal = in_wave & partner_hit
            nf = int(np.count_nonzero(fatal))
            if nf:
                n_fatal[r] += nf
                rec_time[r] += nf * dr
                # Rollback loses the in-flight wave only (the previous
                # checkpoint was taken at the triggering failure).
                wasted[r] += float(np.sum(next_gaps[fatal]))
            work_done = float(cum[k - 1]) if k else work_done
            if k < chunk:
                work_done = work_target
        total[r] = work_target + ckpt_time[r] + rec_time[r] + wasted[r]

    if np.any(total <= 0):  # pragma: no cover - defensive
        raise SimulationError("restart-on-failure produced a non-positive run time")

    return RunSet(
        total_time=total,
        useful_time=np.full(n_runs, work_target),
        checkpoint_time=ckpt_time,
        recovery_time=rec_time,
        wasted_time=wasted,
        n_failures=n_failures,
        n_fatal=n_fatal,
        n_checkpoints=n_failures.copy(),
        n_proc_restarts=n_restarts,
        max_degraded=np.minimum(n_failures, 1),
        label="RestartOnFailure",
        meta={"mtbf": mtbf, "n_pairs": n_pairs, "engine": "restart-on-failure"},
    )
