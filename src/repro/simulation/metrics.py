"""Derived metrics: time-to-solution, I/O pressure and energy.

Glue between the simulator's :class:`~repro.simulation.results.RunSet`
and the analytic application model (:mod:`repro.core.amdahl`,
:mod:`repro.core.energy`), so experiments can go from simulated overheads
to the quantities the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.amdahl import AmdahlApplication, time_to_solution
from repro.core.energy import EnergyBreakdown, PowerModel, energy_overhead
from repro.simulation.results import RunSet
from repro.util.validation import check_positive

__all__ = [
    "time_to_solution_from_runs",
    "IOPressure",
    "io_pressure",
    "energy_from_runs",
]


def time_to_solution_from_runs(
    runs: RunSet,
    app: AmdahlApplication,
    n_procs: int,
    *,
    replicated: bool,
) -> float:
    """Expected time-to-solution for *app* given simulated overheads.

    Applies paper Eq. 22 (no replication) or Eq. 23 (replication) with the
    Monte-Carlo mean overhead in place of the analytic ``H(T)``.
    """
    return time_to_solution(app, n_procs, runs.mean_overhead, replicated=replicated)


@dataclass(frozen=True)
class IOPressure:
    """I/O pressure indicators of a strategy (paper Section 7.5)."""

    #: mean checkpoint waves per day of wall-clock time
    checkpoints_per_day: float
    #: mean fraction of wall-clock time spent on checkpoint/recovery I/O
    io_time_fraction: float
    #: mean seconds between checkpoint waves
    mean_checkpoint_interval: float


def io_pressure(runs: RunSet) -> IOPressure:
    """Summarise the I/O pressure a strategy puts on the file system.

    The paper argues (Section 7.5) that the restart strategy's much longer
    period directly lowers checkpoint frequency, hence I/O congestion; this
    helper quantifies that from simulation output.
    """
    freq = runs.mean_checkpoint_frequency  # waves per second
    return IOPressure(
        checkpoints_per_day=freq * 86_400.0,
        io_time_fraction=runs.mean_io_time_fraction,
        mean_checkpoint_interval=(1.0 / freq) if freq > 0 else float("inf"),
    )


def energy_from_runs(
    runs: RunSet,
    n_procs: int,
    *,
    power: PowerModel = PowerModel(),
) -> tuple[EnergyBreakdown, float]:
    """Mean energy breakdown and relative energy overhead of the runs.

    Feeds the run set's mean time decomposition into the extension's
    first-order energy model (:func:`repro.core.energy.energy_overhead`).
    """
    check_positive("n_procs", n_procs)
    return energy_overhead(
        useful_time=float(runs.useful_time.mean()),
        checkpoint_time=float(runs.checkpoint_time.mean()),
        recovery_time=float(runs.recovery_time.mean()),
        wasted_time=float(runs.wasted_time.mean()),
        n_procs=n_procs,
        power=power,
    )
