"""Closed-form sampling fast path for the *restart* strategy.

Under IID exponential failures, the *restart* strategy renews the platform
at every checkpoint: each period attempt starts from the all-alive state.
The attempt therefore fails iff the first *fatal* (pair-double) failure
time ``tau`` — whose exact distribution is
``P(tau > t) = (1 - (1 - e^{-lambda t})^2)^b`` — lands inside the attempt's
exposure window.  We sample ``tau`` directly by inverse transform
(:func:`repro.core.mtti.sample_time_to_interruption`): **one uniform draw
per attempt**, independent of the number of processors, instead of
simulating thousands of individual failures.

Failure *counts* are recovered exactly as well: conditioned on the attempt
outcome, each pair is independently degraded with a closed-form
probability, so per-attempt failure/restart counts are Binomial draws.

This path is ~100x faster than the event-driven engines for large
platforms and is statistically identical to them (a property the
integration tests check).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.mtti import sample_time_to_interruption
from repro.exceptions import SimulationError
from repro.obs import manifest as _obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.platform_model.costs import CheckpointCosts
from repro.simulation.results import RunSet
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive, check_positive_int

__all__ = ["simulate_restart_sampled"]

#: give up if an attempt round leaves cells unfinished this many times
_MAX_ROUNDS = 10_000


def _degraded_probability_given_not_dead(lam: float, t) -> np.ndarray:
    """P(pair has exactly one dead at *t* | pair not dead at *t*).

    With per-processor death probability ``f = 1 - e^{-lam t}``:
    one-dead has probability ``2 f (1-f)``, both-alive ``(1-f)^2``; the
    conditional drops the ``f^2`` (dead) outcome.
    """
    f = -np.expm1(-lam * np.asarray(t, dtype=float))
    one = 2.0 * f * (1.0 - f)
    alive = (1.0 - f) ** 2
    denom = one + alive
    return np.divide(one, denom, out=np.zeros_like(one), where=denom > 0)


def simulate_restart_sampled(
    *,
    mtbf: float,
    n_pairs: int,
    period: float,
    costs: CheckpointCosts,
    n_periods: int,
    n_runs: int,
    failures_during_checkpoint: bool = True,
    seed: SeedLike = None,
) -> RunSet:
    """Simulate the *restart* strategy via exact fatal-time sampling.

    Parameters mirror :class:`~repro.simulation.lockstep.LockstepConfig`
    for the restart policy with full replication.  Every checkpoint is a
    combined checkpoint-and-restart wave of cost ``costs.restart_checkpoint``
    (the paper's model).

    Returns a :class:`~repro.simulation.results.RunSet`.
    """
    mtbf = check_positive("mtbf", mtbf)
    n_pairs = check_positive_int("n_pairs", n_pairs)
    period = check_positive("period", period)
    n_periods = check_positive_int("n_periods", n_periods)
    n_runs = check_positive_int("n_runs", n_runs)
    t_start = time.monotonic()
    rng = as_generator(seed)

    lam = 1.0 / mtbf
    cr = costs.restart_checkpoint
    exposure = period + cr if failures_during_checkpoint else period
    dr = costs.downtime + costs.recovery

    n_cells = n_runs * n_periods
    total = np.full(n_cells, period + cr)
    wasted = np.zeros(n_cells)
    fatal = np.zeros(n_cells, dtype=np.int64)
    fails = np.zeros(n_cells, dtype=np.int64)
    restarts = np.zeros(n_cells, dtype=np.int64)
    max_deg = np.zeros(n_cells, dtype=np.int64)

    pending = np.arange(n_cells)
    n_rounds = 0
    n_attempts = 0
    # loop-invariant: the end-of-attempt degraded probability depends only
    # on the (constant) exposure window, not on the attempt round
    q = float(_degraded_probability_given_not_dead(lam, exposure))
    for _ in range(_MAX_ROUNDS):
        if pending.size == 0:
            break
        n_rounds += 1
        n_attempts += int(pending.size)
        tau = sample_time_to_interruption(mtbf, n_pairs, pending.size, rng=rng)
        failed = tau <= exposure
        ok = pending[~failed]
        if ok.size:
            # Attempt succeeded: draw the end-of-attempt degraded count.
            deg = rng.binomial(n_pairs, q, ok.size)
            fails[ok] += deg
            restarts[ok] += deg
            max_deg[ok] = np.maximum(max_deg[ok], deg)
        bad = pending[failed]
        if bad.size:
            t_bad = tau[failed]
            total[bad] += t_bad + dr
            wasted[bad] += t_bad
            fatal[bad] += 1
            # Failures seen in the doomed attempt: 2 on the fatal pair plus
            # the degraded pairs among the other b-1 (conditioned on
            # surviving until tau).
            q_bad = _degraded_probability_given_not_dead(lam, t_bad)
            deg_bad = (
                rng.binomial(n_pairs - 1, q_bad) if n_pairs > 1 else np.zeros(bad.size, dtype=np.int64)
            )
            fails[bad] += 2 + deg_bad
            restarts[bad] += 2 + deg_bad  # crash rejuvenation restarts them
            max_deg[bad] = np.maximum(max_deg[bad], deg_bad + 1)
        pending = bad
    else:
        raise SimulationError(
            f"restart-sampled attempts did not converge after {_MAX_ROUNDS} "
            f"rounds: {pending.size} of {n_cells} period cells still pending; "
            f"success probability per attempt is too small "
            f"(period {period:g}s, exposure {exposure:g}s)"
        )

    def per_run(v: np.ndarray) -> np.ndarray:
        return v.reshape(n_runs, n_periods).sum(axis=1)

    # metric points are always-on (batch granularity, merged back from
    # pool workers by run_chunked); JSONL emission stays trace-gated
    obs_metrics.inc("engine.sampled.batches")
    obs_metrics.inc("engine.sampled.runs", n_runs)
    obs_metrics.inc("engine.sampled.periods", n_cells)
    obs_metrics.inc("engine.sampled.attempts", n_attempts)
    obs_metrics.inc("engine.sampled.failures", int(fails.sum()))
    if obs.enabled():
        obs.event(
            "engine.sampled",
            runs=n_runs,
            periods=n_cells,
            attempts=n_attempts,
            rounds=n_rounds,
            failures=int(fails.sum()),
            fatal=int(fatal.sum()),
        )
        obs.count("engine.sampled.periods", n_cells)
        obs.count("engine.sampled.failures", int(fails.sum()))
    return RunSet(
        total_time=per_run(total),
        useful_time=np.full(n_runs, float(n_periods) * period),
        checkpoint_time=np.full(n_runs, float(n_periods) * cr),
        recovery_time=per_run(fatal).astype(float) * dr,
        wasted_time=per_run(wasted),
        n_failures=per_run(fails),
        n_fatal=per_run(fatal),
        n_checkpoints=np.full(n_runs, n_periods, dtype=np.int64),
        n_proc_restarts=per_run(restarts),
        max_degraded=max_deg.reshape(n_runs, n_periods).max(axis=1),
        label=f"Restart(T={period:g}) [sampled]",
        meta={
            "mtbf": mtbf,
            "n_pairs": n_pairs,
            "n_standalone": 0,
            "engine": "sampled",
            "manifest": _obs_manifest.RunManifest(
                label=f"Restart(T={period:g}) [sampled]",
                seed=_obs_manifest.seed_provenance(rng),
                config={
                    "mtbf": mtbf,
                    "n_pairs": n_pairs,
                    "period": period,
                    "n_periods": n_periods,
                    "n_runs": n_runs,
                    "failures_during_checkpoint": failures_during_checkpoint,
                },
                execution={"engine": "sampled"},
                timings={"total_s": time.monotonic() - t_start},
            ).to_dict(),
        },
    )
