"""Seeded, deterministic chaos plans.

A :class:`ChaosPlan` is a frozen value object describing *which* faults a
chaos run may inject and *how often*, plus the seed that makes every
injection decision a pure function of ``(plan, chunk_index, attempt)``.
Nothing about the decision depends on wall-clock time, scheduling or
worker identity, so two runs with the same plan inject the **same fault
sequence** — the property Sodre's restart asymptotics and the
fault-prediction papers (PAPERS.md) need before recovery-strategy quality
is measurable at all.

Fault kinds (all probabilities per chunk *attempt*, mutually exclusive):

``kill``
    SIGKILL the worker process before it executes the chunk — the
    classic fail-stop fault every retry path must survive.
``delay``
    Sleep ``delay_s`` seconds before returning the result — a straggler,
    exercising liveness/timeout logic without killing anything.
``corrupt``
    (tcp only) send the result frame with a deliberately wrong CRC32 —
    the coordinator must detect it, drop the connection and requeue.
``drop``
    (tcp only) close the connection instead of sending the result.
``dup``
    (tcp only) send the result frame twice — the coordinator must
    harvest exactly once.

On the ``process`` backend only ``kill`` and ``delay`` apply (there is no
wire to corrupt); on the ``serial`` backend chaos is inert by design —
serial execution is the degradation target of last resort and must always
converge.  See :func:`repro.chaos.inject.chunk_decision`.

The spec grammar is a comma-separated ``key=value`` list::

    seed=7,kill=0.2,delay=0.1,delay_s=0.05,corrupt=0.1,drop=0.1,dup=0.05

``seed`` defaults to 0 and every probability to 0.0, so ``"seed=7"``
alone is a valid (inert) plan.  Probabilities must sum to at most 1.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "CHAOS_ACTIONS",
    "TRANSPORT_ACTIONS",
    "ChaosDecision",
    "ChaosPlan",
    "parse_chaos",
]

#: every injectable fault kind, in cumulative-draw order (stable: changing
#: this order would change which fault a given seed injects).
CHAOS_ACTIONS = ("kill", "delay", "corrupt", "drop", "dup")

#: the subset of actions that manipulate the wire rather than the worker;
#: only the tcp backend can express them.
TRANSPORT_ACTIONS = ("corrupt", "drop", "dup")


@dataclass(frozen=True)
class ChaosDecision:
    """The (deterministic) outcome of one injection draw."""

    action: str | None
    delay_s: float = 0.0

    def __bool__(self) -> bool:
        return self.action is not None


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded fault-injection plan; see the module docstring.

    >>> plan = ChaosPlan.parse("seed=7,kill=0.5")
    >>> plan.decide(3, 1) == plan.decide(3, 1)   # pure function
    True
    """

    seed: int = 0
    kill: float = 0.0
    delay: float = 0.0
    corrupt: float = 0.0
    drop: float = 0.0
    dup: float = 0.0
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ParameterError(
                f"chaos seed must be a non-negative integer, got {self.seed!r}"
            )
        total = 0.0
        for name in CHAOS_ACTIONS:
            p = getattr(self, name)
            if not isinstance(p, (int, float)) or isinstance(p, bool) or not 0.0 <= p <= 1.0:
                raise ParameterError(
                    f"chaos probability {name!r} must be in [0, 1], got {p!r}"
                )
            total += p
        if total > 1.0 + 1e-12:
            raise ParameterError(
                f"chaos probabilities must sum to <= 1, got {total:g}"
            )
        if not isinstance(self.delay_s, (int, float)) or isinstance(self.delay_s, bool) \
                or self.delay_s < 0:
            raise ParameterError(
                f"chaos delay_s must be >= 0, got {self.delay_s!r}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: "str | ChaosPlan | None") -> "ChaosPlan | None":
        """Parse a spec string (``None``/empty -> ``None``, plan passes through)."""
        if spec is None or isinstance(spec, ChaosPlan):
            return spec
        if not isinstance(spec, str):
            raise ParameterError(
                f"chaos must be a spec string or ChaosPlan, got {type(spec).__name__}"
            )
        text = spec.strip()
        if not text:
            return None
        known = {f.name for f in fields(cls)}
        kwargs: dict = {}
        for item in text.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise ParameterError(
                    f"bad chaos spec item {item.strip()!r} in {spec!r}; "
                    f"expected key=value with key in {sorted(known)}"
                )
            try:
                kwargs[key] = int(value) if key == "seed" else float(value)
            except ValueError:
                raise ParameterError(
                    f"bad chaos value for {key!r} in {spec!r}: {value.strip()!r}"
                ) from None
        return cls(**kwargs)

    def spec(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        parts = [f"seed={self.seed}"]
        for name in CHAOS_ACTIONS:
            p = getattr(self, name)
            if p:
                parts.append(f"{name}={p:g}")
        if self.delay and self.delay_s != 0.05:
            parts.append(f"delay_s={self.delay_s:g}")
        return ",".join(parts)

    @property
    def active(self) -> bool:
        """Whether any fault has a non-zero probability."""
        return any(getattr(self, name) for name in CHAOS_ACTIONS)

    # ------------------------------------------------------------------
    def decide(self, chunk_index: int, attempt: int) -> ChaosDecision:
        """The injection decision for one chunk attempt.

        A pure function of ``(seed, chunk_index, attempt)``: the draw uses
        a :class:`~numpy.random.SeedSequence` keyed on the chunk and the
        attempt, never on time, pid or scheduling — so the fault sequence
        of a chaos run is bit-reproducible, and a retried attempt draws a
        fresh (but equally deterministic) decision, which is what lets a
        kill-heavy plan still converge through the retry budget.
        """
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(int(chunk_index), int(attempt))
        )
        u = np.random.default_rng(seq).random()
        edge = 0.0
        for name in CHAOS_ACTIONS:
            edge += getattr(self, name)
            if u < edge:
                return ChaosDecision(
                    name, self.delay_s if name == "delay" else 0.0
                )
        return ChaosDecision(None)


def parse_chaos(spec: "str | ChaosPlan | None") -> ChaosPlan | None:
    """Module-level alias of :meth:`ChaosPlan.parse` (CLI / env entry point)."""
    return ChaosPlan.parse(spec)
