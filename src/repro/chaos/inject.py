"""Worker-side chaos execution: turning decisions into faults.

The dispatcher never injects faults into itself — chaos executes where the
real faults it models would strike: inside worker processes
(:func:`repro.parallel.chunks.guarded_chunk` calls :func:`worker_fault`)
and on the tcp wire (the worker's result-send path consults the decision's
transport action).  The serial backend — the degradation target of last
resort — is inert by construction, which is what guarantees every chaos
run still terminates with a bit-identical result.

Every injected fault emits a ``chaos.inject`` trace event and a
``chaos.injections`` metric *from the worker*, so ``repro-sim obs report``
can line injected faults up against the ``fault_recovery`` counters the
coordinator records while surviving them.
"""

from __future__ import annotations

import os
import signal
import time

from repro.chaos.plan import TRANSPORT_ACTIONS, ChaosDecision, ChaosPlan, parse_chaos
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs

__all__ = [
    "CHAOS_ENV_VAR",
    "chunk_decision",
    "resolve_chaos",
    "transport_fault",
    "worker_fault",
]

#: environment variable supplying the default chaos spec for any
#: :class:`~repro.parallel.context.ExecutionContext` constructed without an
#: explicit ``chaos=`` — this is what the CI chaos job exports.
CHAOS_ENV_VAR = "REPRO_CHAOS"


def resolve_chaos(value: "str | ChaosPlan | None" = None) -> ChaosPlan | None:
    """The effective chaos plan: explicit *value*, else ``REPRO_CHAOS``."""
    if value is not None:
        return parse_chaos(value)
    return parse_chaos(os.environ.get(CHAOS_ENV_VAR))


def chunk_decision(
    plan: ChaosPlan | None, chunk_index: int, attempt: int, backend: str
) -> ChaosDecision:
    """The injection decision for one chunk attempt on one backend.

    Masks actions the backend cannot express: transport faults need a tcp
    wire, and serial execution (the fallback of last resort) is inert.
    The underlying draw (:meth:`ChaosPlan.decide`) is unmasked, so the
    fault *sequence* for a given plan is identical whatever backend ends
    up executing each attempt.
    """
    if plan is None or not plan.active:
        return ChaosDecision(None)
    decision = plan.decide(chunk_index, attempt)
    if decision.action is None:
        return decision
    if backend == "serial":
        return ChaosDecision(None)
    if backend != "tcp" and decision.action in TRANSPORT_ACTIONS:
        return ChaosDecision(None)
    return decision


def _record(action: str, chunk_index: int, attempt: int) -> None:
    obs.event("chaos.inject", action=action, chunk=chunk_index, attempt=attempt)
    obs_metrics.inc("chaos.injections", action=action)


def worker_fault(decision: ChaosDecision, chunk_index: int, attempt: int) -> None:
    """Execute a worker-local fault (``kill`` / ``delay``) in this process.

    ``kill`` SIGKILLs the calling process — no cleanup, no flush, exactly
    the fail-stop fault the retry machinery must survive.  ``delay``
    sleeps, turning this worker into a straggler.  Transport actions are
    executed by the tcp send path, not here.
    """
    if decision.action == "kill":
        _record("kill", chunk_index, attempt)
        os.kill(os.getpid(), signal.SIGKILL)
    elif decision.action == "delay":
        _record("delay", chunk_index, attempt)
        time.sleep(decision.delay_s)


def transport_fault(decision: ChaosDecision, chunk_index: int, attempt: int) -> str | None:
    """Record and return the transport action to apply when sending a
    result frame (``corrupt`` / ``drop`` / ``dup``), or ``None``."""
    if decision.action in TRANSPORT_ACTIONS:
        _record(decision.action, chunk_index, attempt)
        return decision.action
    return None
