"""repro.chaos — seeded deterministic fault injection for the executor layer.

The paper's whole subject is surviving failures efficiently; this package
makes the substrate's own failure handling *measurable* by injecting
faults as a reproducible process rather than an accident of timing.  A
:class:`ChaosPlan` (seed + per-fault probabilities) turns every chunk
attempt into a deterministic draw — kill the worker, straggle it, corrupt
or drop or duplicate its result frame — so a chaos run can be replayed
bit-for-bit and every backend-conformance invariant (bit-identity,
exactly-once metrics, original-seed retries) can be asserted *under*
failure, not just beside it.

Activation (highest precedence first):

* ``ExecutionContext(chaos="seed=7,kill=0.2,...")`` — programmatic;
* ``repro-sim ... --chaos SPEC`` — CLI;
* ``REPRO_CHAOS`` — environment, inherited by every spawned worker and how
  the CI chaos job retargets whole suites.

Faults execute in workers (and on the tcp wire), never in the dispatching
process, and the serial backend is inert by design — so the degradation
chain tcp → process → serial always converges.  See
:mod:`repro.chaos.plan` for the spec grammar and decision function, and
:mod:`repro.chaos.inject` for the execution hooks.

>>> from repro.chaos import ChaosPlan
>>> plan = ChaosPlan.parse("seed=42,kill=0.3,delay=0.2")
>>> plan.decide(0, 1) == plan.decide(0, 1)
True
"""

from repro.chaos.inject import (
    CHAOS_ENV_VAR,
    chunk_decision,
    resolve_chaos,
    transport_fault,
    worker_fault,
)
from repro.chaos.plan import (
    CHAOS_ACTIONS,
    TRANSPORT_ACTIONS,
    ChaosDecision,
    ChaosPlan,
    parse_chaos,
)

__all__ = [
    "CHAOS_ACTIONS",
    "CHAOS_ENV_VAR",
    "TRANSPORT_ACTIONS",
    "ChaosDecision",
    "ChaosPlan",
    "chunk_decision",
    "parse_chaos",
    "resolve_chaos",
    "transport_fault",
    "worker_fault",
]
